//! Metadata-plane scale experiment (DESIGN.md §16): compact layout
//! records vs the paper's stored location maps at 10-million-object
//! scale on a 64-node / 8-rack cluster.
//!
//! Four measurements:
//!
//! * **bytes/object** — serialized metadata per object, both formats,
//!   counting the `k + 1` replicas each object's record is stored with.
//!   Acceptance: the compact record is ≥ 10× smaller.
//! * **lookup throughput** — resolutions/second of "which node hosts
//!   chunk `c` of object `o`" for both paths: the stored map answers by
//!   table lookup, the compact record recomputes the rendezvous
//!   placement. The `meta_lookup_ns` histogram provides p50/p99. The
//!   cost model's `meta_rpc` prices what each path's metadata RPC would
//!   cost on the wire (the stored map ships 16× more bytes).
//! * **differential oracle** — an end-to-end spot check on a real store
//!   under the deterministic policy: the compact record materializes,
//!   and round-trips through the data plane to, exactly the map
//!   `LocationMap::build` derives from object metadata.
//! * **rebalance** — a node add opens a new membership epoch and a
//!   bounded rebalance pass advances a 50k-object sample; rendezvous
//!   hashing must move ≈ 1/(n+1) of chunks (within 20%). A separate
//!   namespace measures the node-remove direction at full scan.
//!
//! Machine-readable output goes to `results/meta_scale.json`.

use crate::harness::BenchEnv;
use crate::report::Table;
use fusion_cluster::spec::ClusterSpec;
use fusion_cluster::topology::Topology;
use fusion_core::config::{EcConfig, PlacementPolicy, StoreConfig};
use fusion_core::location_map::{LocationEntry, LocationMap};
use fusion_core::meta::{LayoutRecord, Membership, Namespace};
use fusion_core::placement::{object_id, place_stripe, ObjectId, StripeShape};
use fusion_core::store::Store;
use std::collections::HashMap;
use std::time::Instant;

/// Cluster shape: 8 racks of 8 nodes, RS(9,6) — tolerance 3, so the
/// domain constraints are satisfiable with headroom.
const NODES: usize = 64;
const RACKS: usize = 8;
/// Synthetic object shape: 64 chunks of 1 MiB.
const CHUNKS_PER_OBJECT: u32 = 64;
const CHUNK_BYTES: u64 = 1 << 20;
/// Namespace shards (power of two).
const SHARDS: usize = 1024;
/// Placement seed (the store default).
const SEED: u64 = 0xF051_0A11;
/// Resolutions timed per path.
const LOOKUPS: usize = 200_000;
/// Objects materialized into the stored-map baseline index.
const STORED_SAMPLE: usize = 100_000;
/// Stale objects the bounded node-add rebalance pass advances.
const REBALANCE_SAMPLE: usize = 50_000;
/// Objects in the separate node-remove namespace (full scan).
const REMOVE_OBJECTS: usize = 200_000;

/// SplitMix64 — deterministic pseudo-random index stream for lookups.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn record() -> LayoutRecord {
    LayoutRecord {
        epoch: 0,
        chunks: CHUNKS_PER_OBJECT,
        size: u64::from(CHUNKS_PER_OBJECT) * CHUNK_BYTES,
        code: EcConfig::RS_9_6.into(),
        exceptions: Vec::new(),
    }
}

fn stripe_shape() -> StripeShape {
    StripeShape::from_codec(
        &*EcConfig::RS_9_6
            .build_codec(fusion_ec::codec::CodecKind::Scalar)
            .expect("valid code"),
    )
}

/// Builds a namespace preloaded with `objects` synthetic records,
/// returning it plus the object ids in insertion order.
fn build_namespace(objects: usize) -> (Namespace, Vec<ObjectId>) {
    let topo = Topology::racks(NODES, RACKS);
    let ns =
        Namespace::new(SEED, SHARDS, EcConfig::RS_9_6, Membership::full(topo)).expect("valid code");
    let mut ids = Vec::with_capacity(objects);
    for i in 0..objects {
        let id = object_id("bench", &format!("obj-{i}"));
        ns.insert(id, record());
        ids.push(id);
    }
    (ns, ids)
}

/// Materializes the stored-map baseline for a sample of objects: the
/// paper's 8-bytes-per-chunk format, one map per object, placements
/// cached per stripe while building.
fn build_stored_index(ns: &Namespace, ids: &[ObjectId]) -> HashMap<u128, LocationMap> {
    let m = ns.current_membership();
    let shape = stripe_shape();
    let mut index = HashMap::with_capacity(ids.len());
    for &id in ids {
        let rec = ns.get(id).expect("inserted");
        let okey = id.placement_key();
        let mut entries = Vec::with_capacity(rec.chunks as usize);
        let mut cached: Option<(u64, Vec<usize>)> = None;
        for c in 0..rec.chunks {
            let (stripe, bin) = rec.stripe_of(c);
            if cached.as_ref().is_none_or(|(s, _)| *s != stripe) {
                cached = Some((
                    stripe,
                    place_stripe(ns.seed(), okey, stripe, &shape, &m.members, &m.topology),
                ));
            }
            entries.push(LocationEntry {
                chunk_offset: (u64::from(c) * CHUNK_BYTES) as u32,
                node: cached.as_ref().expect("just filled").1[bin] as u32,
            });
        }
        index.insert(id.0, LocationMap { entries });
    }
    index
}

/// End-to-end differential oracle on a real store: deterministic policy,
/// real analytics file, compact record vs `LocationMap::build`.
fn oracle_spot_check(env: &BenchEnv) -> (usize, usize) {
    let cfg = StoreConfig::fusion()
        .with_cluster(ClusterSpec::with_topology(Topology::racks(NODES, RACKS)))
        .with_placement(PlacementPolicy::Deterministic)
        .with_seed(SEED);
    let mut store = Store::new(cfg).expect("valid config");
    store
        .put("oracle", env.lineitem_file().to_vec())
        .expect("put succeeds");
    let oracle = LocationMap::build(store.object("oracle").expect("object")).expect("offsets fit");
    let chunks = oracle.entries.len();
    let mut mismatches = 0;
    // The materialized map, the data-plane round trip, and the hot-path
    // lookup must all agree with the stored-map oracle.
    let (map, _) = store.location_map("oracle").expect("map");
    if map != oracle {
        mismatches += 1;
    }
    if store.read_location_map("oracle").expect("replica readable") != oracle {
        mismatches += 1;
    }
    for c in 0..chunks {
        if store.chunk_node("oracle", c) != oracle.node_of(c) {
            mismatches += 1;
        }
    }
    (chunks, mismatches)
}

struct PathStats {
    lookups_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    bytes_per_object: f64,
    rpc_ns: u64,
}

fn json(
    objects: usize,
    compact: &PathStats,
    stored: &PathStats,
    ratio: f64,
    add: (f64, f64, u64, u64),
    remove: (f64, f64),
    oracle: (usize, usize),
) -> String {
    let mut out = String::from("{\n  \"experiment\": \"meta_scale\",\n");
    out.push_str(&format!(
        "  \"cluster\": {{\"nodes\": {NODES}, \"racks\": {RACKS}}},\n"
    ));
    out.push_str(&format!(
        "  \"objects\": {objects}, \"chunks_per_object\": {CHUNKS_PER_OBJECT}, \
         \"chunk_bytes\": {CHUNK_BYTES},\n"
    ));
    for (name, s) in [("compact", compact), ("stored_map", stored)] {
        out.push_str(&format!(
            "  \"{name}\": {{\"bytes_per_object\": {:.1}, \"lookups_per_sec\": {:.0}, \
             \"lookup_p50_ns\": {}, \"lookup_p99_ns\": {}, \"meta_rpc_ns\": {}}},\n",
            s.bytes_per_object, s.lookups_per_sec, s.p50_ns, s.p99_ns, s.rpc_ns
        ));
    }
    out.push_str(&format!(
        "  \"bytes_ratio_stored_over_compact\": {ratio:.2},\n"
    ));
    out.push_str(&format!(
        "  \"rebalance_add\": {{\"moved_fraction\": {:.5}, \"expected_fraction\": {:.5}, \
         \"bytes_moved\": {}, \"chunks_total\": {}}},\n",
        add.0, add.1, add.2, add.3
    ));
    out.push_str(&format!(
        "  \"rebalance_remove\": {{\"moved_fraction\": {:.5}, \"expected_fraction\": {:.5}}},\n",
        remove.0, remove.1
    ));
    out.push_str(&format!(
        "  \"oracle_spot_check\": {{\"chunks\": {}, \"mismatches\": {}}}\n}}\n",
        oracle.0, oracle.1
    ));
    out
}

/// Metadata plane at 10M-object scale: compact records vs stored maps.
pub fn meta_scale(env: &BenchEnv) -> String {
    let objects = ((10_000_000f64 * env.scale) as usize).max(10_000);
    let replicas = (EcConfig::RS_9_6.k + 1) as u64;
    let cost = ClusterSpec::default().cost;

    // --- build the 10M-object namespace.
    let t0 = Instant::now();
    let (ns, ids) = build_namespace(objects);
    let build_s = t0.elapsed().as_secs_f64();

    let compact_bytes_per_object = (ns.record_bytes() * replicas) as f64 / objects as f64;

    // --- stored-map baseline: materialize a sample and scale (records
    // are uniform, so the sample mean is exact).
    let sample = STORED_SAMPLE.min(objects);
    let stored_index = build_stored_index(&ns, &ids[..sample]);
    let stored_sample_bytes: u64 = stored_index.values().map(LocationMap::byte_size).sum();
    let stored_bytes_per_object = (stored_sample_bytes * replicas) as f64 / sample as f64;
    let ratio = stored_bytes_per_object / compact_bytes_per_object;

    // --- lookup throughput, compact path (recompute on read).
    let t0 = Instant::now();
    let mut sink = 0usize;
    for i in 0..LOOKUPS {
        let id = ids[(mix(i as u64) % objects as u64) as usize];
        let chunk = (mix(i as u64 ^ 0xabcd) % u64::from(CHUNKS_PER_OBJECT)) as u32;
        sink ^= ns.chunk_node(id, chunk).expect("resolves");
    }
    let compact_lps = LOOKUPS as f64 / t0.elapsed().as_secs_f64();
    let hist = ns.metrics().histogram("meta_lookup_ns");
    let compact = PathStats {
        lookups_per_sec: compact_lps,
        p50_ns: hist.quantile(0.50),
        p99_ns: hist.quantile(0.99),
        bytes_per_object: compact_bytes_per_object,
        rpc_ns: cost.meta_rpc(LayoutRecord::HEADER_BYTES).0,
    };

    // --- lookup throughput, stored-map path (table lookup).
    let t0 = Instant::now();
    let mut stored_lat = Vec::with_capacity(LOOKUPS);
    for i in 0..LOOKUPS {
        let id = ids[(mix(i as u64) % sample as u64) as usize];
        let chunk = (mix(i as u64 ^ 0xabcd) % u64::from(CHUNKS_PER_OBJECT)) as usize;
        let t1 = Instant::now();
        sink ^= stored_index[&id.0].node_of(chunk).expect("resolves");
        stored_lat.push(t1.elapsed().as_nanos() as u64);
    }
    let stored_lps = LOOKUPS as f64 / t0.elapsed().as_secs_f64();
    stored_lat.sort_unstable();
    let stored = PathStats {
        lookups_per_sec: stored_lps,
        p50_ns: stored_lat[stored_lat.len() / 2],
        p99_ns: stored_lat[stored_lat.len() * 99 / 100],
        bytes_per_object: stored_bytes_per_object,
        rpc_ns: cost.meta_rpc(u64::from(CHUNKS_PER_OBJECT) * 8).0,
    };
    std::hint::black_box(sink);

    // --- rebalance, node add: one node joins rack 0; a bounded pass
    // advances a 50k-object sample. Rendezvous moves ~1/(n+1) of chunks.
    ns.add_node(0);
    let add_report = ns.rebalance(CHUNK_BYTES, Some(REBALANCE_SAMPLE.min(objects)));
    let add_frac = add_report.moved_fraction();
    let add_expected = 1.0 / (NODES as f64 + 1.0);

    // --- rebalance, node remove: separate namespace (so the add and
    // remove epochs don't cancel out), full scan.
    let (rem_ns, _) = build_namespace(REMOVE_OBJECTS.min(objects));
    rem_ns.remove_node(NODES - 1);
    let rem_report = rem_ns.rebalance(CHUNK_BYTES, None);
    let remove_frac = rem_report.moved_fraction();
    let remove_expected = 1.0 / NODES as f64;

    // --- end-to-end differential oracle on a real store.
    let (oracle_chunks, oracle_mismatches) = oracle_spot_check(env);

    let _ = std::fs::create_dir_all("results");
    std::fs::write(
        "results/meta_scale.json",
        json(
            objects,
            &compact,
            &stored,
            ratio,
            (
                add_frac,
                add_expected,
                add_report.bytes_moved,
                add_report.chunks_total,
            ),
            (remove_frac, remove_expected),
            (oracle_chunks, oracle_mismatches),
        ),
    )
    .expect("write results/meta_scale.json");

    let mut t = Table::new(&[
        "path",
        "bytes/object (x7 replicas)",
        "lookups/sec",
        "p50",
        "p99",
        "meta RPC (modeled)",
    ]);
    for (name, s) in [("compact record", &compact), ("stored map", &stored)] {
        t.row(vec![
            name.to_string(),
            format!("{:.0}", s.bytes_per_object),
            format!("{:.0}", s.lookups_per_sec),
            format!("{} ns", s.p50_ns),
            format!("{} ns", s.p99_ns),
            format!("{} ns", s.rpc_ns),
        ]);
    }
    let add_dev = (add_frac - add_expected).abs() / add_expected;
    let rem_dev = (remove_frac - remove_expected).abs() / remove_expected;
    format!(
        "Metadata plane at scale: {objects} objects x {CHUNKS_PER_OBJECT} chunks, \
         {NODES} nodes / {RACKS} racks, RS(9,6) (namespace built in {build_s:.1}s)\n\
         metadata bytes/object ratio stored/compact: {ratio:.1}x (acceptance: >= 10x)\n\
         node-add rebalance: moved {add_frac:.4} of chunks over a \
         {}-object sample, expected 1/{} = {add_expected:.4} (deviation {add_dev_pct:.1}%, acceptance: <= 20%)\n\
         node-remove rebalance: moved {remove_frac:.4}, expected 1/{NODES} = {remove_expected:.4} \
         (deviation {rem_dev_pct:.1}%)\n\
         oracle spot check: {oracle_mismatches} mismatches over {oracle_chunks} chunks \
         (acceptance: 0)\n\
         (also written to results/meta_scale.json)\n{}",
        add_report.objects_scanned,
        NODES + 1,
        t.render(),
        add_dev_pct = add_dev * 100.0,
        rem_dev_pct = rem_dev * 100.0,
    )
}
