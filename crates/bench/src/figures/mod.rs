//! One function per table/figure of the paper's evaluation. Each returns
//! rendered text; the `figures` binary prints and archives them.
//!
//! See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured values.

pub mod agg_pushdown;
pub mod degraded;
pub mod ec_throughput;
pub mod latency;
pub mod meta_scale;
pub mod observability;
pub mod repair_traffic;
pub mod scan_throughput;
pub mod service_throughput;
pub mod snappy_throughput;
pub mod storage;
pub mod traffic_load;

use crate::harness::BenchEnv;

/// Every artifact id, in paper order.
pub const ALL_IDS: &[&str] = &[
    "table3",
    "table4",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig6",
    "fig10a",
    "fig10b",
    "fig12",
    "fig13",
    "fig14ab",
    "fig14c",
    "fig14d",
    "fig15",
    "fig16a",
    "fig16bc",
    "ablation",
    "extagg",
    "agg_pushdown",
    "degraded",
    "ec_throughput",
    "scan_throughput",
    "snappy_throughput",
    "observability",
    "repair_traffic",
    "traffic_load",
    "meta_scale",
    "service_throughput",
];

/// Runs one artifact by id.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
pub fn run(id: &str, env: &BenchEnv) -> String {
    match id {
        "table3" => storage::table3(env),
        "table4" => latency::table4(env),
        "fig4a" => storage::fig4a(env),
        "fig4b" => latency::fig4b(env),
        "fig4c" => storage::fig4c(env),
        "fig4d" => storage::fig4d(env),
        "fig6" => storage::fig6(env),
        "fig10a" => storage::fig10a(env),
        "fig10b" => latency::fig10b(env),
        "fig12" => storage::fig12(env),
        "fig13" => latency::fig13(env),
        "fig14ab" => latency::fig14ab(env),
        "fig14c" => latency::fig14c(env),
        "fig14d" => latency::fig14d(env),
        "fig15" => latency::fig15(env),
        "fig16a" => storage::fig16a(env),
        "fig16bc" => storage::fig16bc(env),
        "ablation" => latency::ablation_adaptive(env),
        "extagg" => latency::ext_aggregate_pushdown(env),
        "agg_pushdown" => agg_pushdown::agg_pushdown(env),
        "degraded" => degraded::degraded_latency(env),
        "ec_throughput" => ec_throughput::ec_throughput(env),
        "scan_throughput" => scan_throughput::scan_throughput(env),
        "snappy_throughput" => snappy_throughput::snappy_throughput(env),
        "observability" => observability::observability(env),
        "repair_traffic" => repair_traffic::repair_traffic(env),
        "traffic_load" => traffic_load::traffic_load(env),
        "meta_scale" => meta_scale::meta_scale(env),
        "service_throughput" => service_throughput::service_throughput(env),
        id if id.starts_with("debugcol") => {
            let col: usize = id.trim_start_matches("debugcol").parse().unwrap_or(0);
            latency::debug_column(env, col)
        }
        other => panic!("unknown artifact id: {other}"),
    }
}
