//! Service-mode throughput experiment (DESIGN.md §17): wall-clock QPS
//! and tail latency of the threaded service across worker counts.
//!
//! Unlike every other figure — which replays workflows through the DES
//! time plane — this one measures *real elapsed time*: closed-loop
//! client threads drive the [`fusion_service::Service`] through the
//! loopback transport (real frame codec, bounded queue, worker pool)
//! with a mixed read workload (pushdown queries + ranged GETs) against
//! the lineitem dataset. For each worker count we report achieved QPS
//! and the p50/p99 of the service-side `request_ns` histogram.
//!
//! Expected shape: QPS scales with workers until the store's shared
//! structures (chunk cache, metrics) serialize it; p99 grows once
//! queueing sets in. Machine-readable output goes to
//! `results/service_throughput.json`.

use crate::harness::{BenchEnv, SystemKind};
use crate::report::Table;
use fusion_core::store::Store;
use fusion_service::{Client, Loopback, Service};
use std::sync::Arc;
use std::time::Instant;

/// Worker-thread counts swept (≥ 3 points per the experiment spec).
const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Object the clients hammer.
const OBJECT: &str = "svc";

/// The mixed closed-loop op stream: three pushdown-friendly queries and
/// one ranged GET, round-robin.
const QUERIES: &[&str] = &[
    "SELECT sum(extendedprice) FROM svc WHERE quantity <= 10",
    "SELECT avg(discount), count(*) FROM svc WHERE quantity <= 25",
    "SELECT min(shipdate), max(shipdate) FROM svc",
];

struct Cell {
    workers: usize,
    ops: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn fresh_store(env: &BenchEnv) -> Store {
    let file = env.lineitem_file().to_vec();
    let cfg = BenchEnv::store_config(SystemKind::Fusion, file.len(), 10 << 30);
    let mut store = Store::new(cfg).expect("store");
    store.put(OBJECT, file).expect("put lineitem");
    store
}

fn drive(env: &BenchEnv, workers: usize) -> Cell {
    let service = Arc::new(Service::start(fresh_store(env), workers));
    let clients = env.clients.max(1);
    let per_client = (env.queries / clients).max(25);
    let object_len = {
        let mut c = Client::new(Loopback::new(Arc::clone(&service)));
        // Warm the chunk cache so every cell measures steady state, and
        // learn the object size for the GET stream.
        for q in QUERIES {
            c.query(OBJECT, q).expect("warmup query");
        }
        service.with_store(|s| s.object(OBJECT).expect("object exists").size)
    };

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut client = Client::new(Loopback::new(service));
                for i in 0..per_client {
                    if (id + i) % 4 == 3 {
                        let len = 4096.min(object_len);
                        let off = ((id + i) as u64 * 65_537) % (object_len - len + 1);
                        client.get(OBJECT, off, len).expect("get");
                    } else {
                        let q = QUERIES[(id + i) % QUERIES.len()];
                        client.query(OBJECT, q).expect("query");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let m = service.metrics();
    let hist = m.histogram("service.request_ns");
    let completed = m.counter("service.completed").get();
    let requests = m.counter("service.requests").get();
    assert_eq!(
        requests,
        completed
            + m.counter("service.rejected_overload").get()
            + m.counter("service.rejected_draining").get(),
        "conservation must hold in the bench too"
    );
    let cell = Cell {
        workers,
        ops: (clients * per_client) as u64,
        qps: (clients * per_client) as f64 / elapsed,
        p50_us: hist.quantile(0.50) as f64 / 1_000.0,
        p99_us: hist.quantile(0.99) as f64 / 1_000.0,
    };
    service.shutdown();
    cell
}

fn json(cells: &[Cell], clients: usize) -> String {
    let mut out = String::from("{\n  \"experiment\": \"service_throughput\",\n");
    out.push_str(&format!("  \"clients\": {clients},\n  \"cells\": [\n"));
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"ops\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            c.workers,
            c.ops,
            c.qps,
            c.p50_us,
            c.p99_us,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Service-mode wall-clock throughput vs worker count.
pub fn service_throughput(env: &BenchEnv) -> String {
    let cells: Vec<Cell> = WORKER_COUNTS.iter().map(|&w| drive(env, w)).collect();

    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/service_throughput.json", json(&cells, env.clients))
        .expect("write results/service_throughput.json");

    let mut table = Table::new(&["workers", "ops", "QPS", "p50 (µs)", "p99 (µs)"]);
    for c in &cells {
        table.row(vec![
            c.workers.to_string(),
            c.ops.to_string(),
            format!("{:.0}", c.qps),
            format!("{:.1}", c.p50_us),
            format!("{:.1}", c.p99_us),
        ]);
    }
    format!(
        "service_throughput: loopback service, {} closed-loop clients, mixed query+GET\n\
         (also written to results/service_throughput.json)\n{}",
        env.clients,
        table.render()
    )
}
