//! Degraded-mode query latency (robustness extension, Figure-13-style):
//! the per-column Fusion-vs-baseline comparison repeated with 0, 1, 2,
//! and 3 of the nine storage nodes failed — up to the m = 3 parity
//! blocks RS(9,6) tolerates.
//!
//! Both systems keep answering (identical rows to the healthy cluster);
//! what changes is the time plane: chunks whose hosting node died are
//! rebuilt at the coordinator from the stripe's k surviving shards, so
//! Fusion loses in-situ evaluation for exactly those chunks while the
//! baseline pays the same reconstruction on its fetch path.
//!
//! Besides the rendered table, this experiment writes machine-readable
//! JSON to `results/degraded_latency.json`.

use crate::harness::{reduction, summarize, BenchEnv, SystemKind};
use crate::microbench::microbench_sql;
use crate::report::Table;
use fusion_core::query::QueryOutput;
use fusion_core::store::Store;

/// The paper's default microbenchmark selectivity.
const SEL: f64 = 0.01;
/// Representative columns: 0/5 are pushdown winners in Figure 13, 4/9
/// are the incompressible cases where pushdown gains little.
const COLUMNS: [usize; 4] = [0, 4, 5, 9];
/// Nodes killed cumulatively: spread across the ring so consecutive
/// failure levels do not concentrate on adjacent placements.
const KILL_ORDER: [usize; 3] = [0, 4, 8];

struct Cell {
    failed: usize,
    system: &'static str,
    column: usize,
    p50_ns: u64,
    p99_ns: u64,
    net_bytes: u64,
}

fn run_cells(
    env: &BenchEnv,
    store: &Store,
    system: &'static str,
    failed: usize,
    cells: &mut Vec<Cell>,
) {
    for &c in &COLUMNS {
        let outputs: Vec<QueryOutput> =
            env.outputs_per_copy(store, "lineitem", |obj| microbench_sql(env, c, SEL, obj));
        let stats = env.replay(store, &outputs);
        let s = summarize(&stats);
        cells.push(Cell {
            failed,
            system,
            column: c,
            p50_ns: s.p50.0,
            p99_ns: s.p99.0,
            net_bytes: outputs.iter().map(|o| o.net_bytes).sum::<u64>()
                / outputs.len().max(1) as u64,
        });
    }
}

fn json(cells: &[Cell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"degraded_latency\",\n");
    out.push_str(&format!("  \"selectivity\": {SEL},\n"));
    out.push_str(&format!(
        "  \"columns\": [{}],\n  \"cells\": [\n",
        COLUMNS.map(|c| c.to_string()).join(", ")
    ));
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"failed_nodes\": {}, \"system\": \"{}\", \"column\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"net_bytes\": {}}}{}\n",
            c.failed,
            c.system,
            c.column,
            c.p50_ns,
            c.p99_ns,
            c.net_bytes,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Degraded query latency: Fusion vs baseline at 0–3 failed nodes.
pub fn degraded_latency(env: &BenchEnv) -> String {
    let file = env.lineitem_file().to_vec();
    let mut fusion = env.build_store(SystemKind::Fusion, "lineitem", &file);
    let mut baseline = env.build_store(SystemKind::Baseline, "lineitem", &file);

    let mut cells = Vec::new();
    for failed in 0..=KILL_ORDER.len() {
        if failed > 0 {
            let node = KILL_ORDER[failed - 1];
            fusion.fail_node(node).expect("valid node");
            baseline.fail_node(node).expect("valid node");
        }
        run_cells(env, &fusion, "fusion", failed, &mut cells);
        run_cells(env, &baseline, "baseline", failed, &mut cells);
    }

    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/degraded_latency.json", json(&cells))
        .expect("write results/degraded_latency.json");

    let mut t = Table::new(&[
        "failed",
        "column",
        "fusion p50",
        "baseline p50",
        "p50 reduction",
        "p99 reduction",
    ]);
    for failed in 0..=KILL_ORDER.len() {
        for &c in &COLUMNS {
            let f = cells
                .iter()
                .find(|x| x.failed == failed && x.column == c && x.system == "fusion")
                .expect("fusion cell");
            let b = cells
                .iter()
                .find(|x| x.failed == failed && x.column == c && x.system == "baseline")
                .expect("baseline cell");
            t.row(vec![
                failed.to_string(),
                c.to_string(),
                fusion_cluster::time::Nanos(f.p50_ns).to_string(),
                fusion_cluster::time::Nanos(b.p50_ns).to_string(),
                format!(
                    "{:+.0}%",
                    100.0
                        * reduction(
                            fusion_cluster::time::Nanos(b.p50_ns),
                            fusion_cluster::time::Nanos(f.p50_ns)
                        )
                ),
                format!(
                    "{:+.0}%",
                    100.0
                        * reduction(
                            fusion_cluster::time::Nanos(b.p99_ns),
                            fusion_cluster::time::Nanos(f.p99_ns)
                        )
                ),
            ]);
        }
    }
    format!(
        "Degraded query latency (extension): per-column p50/p99 vs failed nodes, RS(9,6), 1% selectivity\n\
         (also written to results/degraded_latency.json)\n{}",
        t.render()
    )
}
