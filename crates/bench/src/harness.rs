//! Shared experiment environment: scaled datasets, store construction with
//! object copies, and closed-loop query replay.

use fusion_cluster::engine::{Workflow, WorkflowStats};
use fusion_cluster::spec::ClusterSpec;
use fusion_cluster::time::{percentile, Nanos};
use fusion_core::config::{QueryMode, StoreConfig};
use fusion_core::query::QueryOutput;
use fusion_core::store::Store;
use fusion_format::table::Table;
use fusion_workloads::tpch::{lineitem, TpchConfig};

/// Which system executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Fusion: FAC layout + adaptive pushdown.
    Fusion,
    /// Baseline: fixed blocks + coordinator reassembly (MinIO/Ceph-class).
    Baseline,
    /// Ablation: FAC layout + unconditional pushdown.
    AlwaysPushdown,
}

impl SystemKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Fusion => "fusion",
            SystemKind::Baseline => "baseline",
            SystemKind::AlwaysPushdown => "always-pushdown",
        }
    }
}

/// The benchmark environment: scale knobs plus lazily cached datasets and
/// stores (building a 10-copy store is the expensive part of most
/// figures).
pub struct BenchEnv {
    /// Relative dataset scale (1.0 = default laptop scale ≈ 1/1000 of the
    /// paper's files).
    pub scale: f64,
    /// Object copies of each file (paper: 10 — the 100 GB dataset is ten
    /// duplicated 10 GB files).
    pub copies: usize,
    /// Queries per experiment cell (paper: 10 000).
    pub queries: usize,
    /// Concurrent closed-loop clients (paper: 10).
    pub clients: usize,
    lineitem_table: std::cell::OnceCell<Table>,
    lineitem_file: std::cell::OnceCell<Vec<u8>>,
    fusion_store: std::cell::OnceCell<Store>,
    baseline_store: std::cell::OnceCell<Store>,
}

impl Default for BenchEnv {
    fn default() -> Self {
        BenchEnv::new(1.0, 10, 1000, 10)
    }
}

impl BenchEnv {
    /// Creates an environment.
    pub fn new(scale: f64, copies: usize, queries: usize, clients: usize) -> BenchEnv {
        BenchEnv {
            scale,
            copies,
            queries,
            clients,
            lineitem_table: std::cell::OnceCell::new(),
            lineitem_file: std::cell::OnceCell::new(),
            fusion_store: std::cell::OnceCell::new(),
            baseline_store: std::cell::OnceCell::new(),
        }
    }

    /// Lineitem generator config at this scale.
    pub fn lineitem_cfg(&self) -> TpchConfig {
        TpchConfig {
            rows_per_group: ((30_000.0 * self.scale) as usize).max(500),
            ..Default::default()
        }
    }

    /// The lineitem table (cached).
    pub fn lineitem_table(&self) -> &Table {
        self.lineitem_table
            .get_or_init(|| lineitem(self.lineitem_cfg()))
    }

    /// The serialized lineitem file (cached).
    pub fn lineitem_file(&self) -> &[u8] {
        self.lineitem_file.get_or_init(|| {
            let cfg = self.lineitem_cfg();
            fusion_format::writer::write_table(
                self.lineitem_table(),
                fusion_format::writer::WriteOptions {
                    rows_per_group: cfg.rows_per_group,
                },
            )
            .expect("valid table")
        })
    }

    /// Block size that keeps the paper's 100 MB : 10 GB ratio at our
    /// scale.
    pub fn scaled_block(file_len: usize) -> u64 {
        ((file_len as u64) / 100).clamp(16 << 10, 100 << 20)
    }

    /// Store config for a system kind given the file it will hold and the
    /// size the paper's equivalent file had.
    ///
    /// Besides the block size, this scales every throughput rate of the
    /// cost model down by `paper_len / file_len` so that the virtual time
    /// of each operation matches the testbed's at the paper's data scale
    /// (fixed latencies such as RPC round-trips stay fixed). Without this,
    /// shrinking the data 1000× would make fixed costs dominate and erase
    /// the transfer-volume effects the paper measures.
    pub fn store_config(kind: SystemKind, file_len: usize, paper_len: u64) -> StoreConfig {
        let block = Self::scaled_block(file_len);
        let factor = (paper_len as f64 / file_len as f64).max(1.0);
        let mut cfg = match kind {
            SystemKind::Fusion => StoreConfig::fusion().with_block_size(block),
            SystemKind::AlwaysPushdown => {
                let mut c = StoreConfig::fusion().with_block_size(block);
                c.query_mode = QueryMode::AlwaysPushdown;
                c
            }
            SystemKind::Baseline => StoreConfig::baseline().with_block_size(block),
        };
        cfg.cluster.cost = cfg.cluster.cost.clone().scaled_down(factor);
        cfg
    }

    /// Builds a store holding `copies` copies of `file` named
    /// `{name}_{i}`; `paper_len` scales the cost model (see
    /// [`BenchEnv::store_config`]).
    pub fn build_store_scaled(
        &self,
        kind: SystemKind,
        name: &str,
        file: &[u8],
        paper_len: u64,
    ) -> Store {
        let cfg = Self::store_config(kind, file.len(), paper_len);
        let mut store = Store::new(cfg).expect("valid store config");
        for i in 0..self.copies {
            store
                .put(&format!("{name}_{i}"), file.to_vec())
                .expect("put succeeds");
        }
        store
    }

    /// Builds a store assuming a lineitem-sized paper file (10 GB).
    pub fn build_store(&self, kind: SystemKind, name: &str, file: &[u8]) -> Store {
        self.build_store_scaled(kind, name, file, 10 << 30)
    }

    /// The cached lineitem store for a system (10 copies).
    pub fn lineitem_store(&self, kind: SystemKind) -> &Store {
        let cell = match kind {
            SystemKind::Fusion => &self.fusion_store,
            SystemKind::Baseline => &self.baseline_store,
            SystemKind::AlwaysPushdown => {
                panic!("always-pushdown store is not cached; use build_store")
            }
        };
        cell.get_or_init(|| {
            let file = self.lineitem_file().to_vec();
            self.build_store(kind, "lineitem", &file)
        })
    }

    /// Builds one query output per copy for the given SQL template
    /// (`{}` is substituted with the copy object name).
    pub fn outputs_per_copy(
        &self,
        store: &Store,
        name: &str,
        sql_for: impl Fn(&str) -> String,
    ) -> Vec<QueryOutput> {
        (0..self.copies)
            .map(|i| {
                let object = format!("{name}_{i}");
                let sql = sql_for(&object);
                store
                    .query_as(&object, &sql)
                    .unwrap_or_else(|e| panic!("query failed on {object}: {e}"))
            })
            .collect()
    }

    /// Replays `self.queries` queries over the per-copy workflows with
    /// `self.clients` closed-loop clients, mixing copies per query as the
    /// paper's client driver does.
    pub fn replay(&self, store: &Store, outputs: &[QueryOutput]) -> Vec<WorkflowStats> {
        self.replay_with_spec(&store.config().cluster, outputs)
    }

    /// Like [`BenchEnv::replay`] but with an explicit cluster spec (for
    /// bandwidth sweeps the workflows must have been built by a store
    /// carrying the same cost model).
    pub fn replay_with_spec(
        &self,
        spec: &ClusterSpec,
        outputs: &[QueryOutput],
    ) -> Vec<WorkflowStats> {
        let mut clients: Vec<Vec<Workflow>> = vec![Vec::new(); self.clients];
        for q in 0..self.queries {
            // Spread copies across clients and time.
            let copy = (q * 7 + q / self.clients) % outputs.len();
            clients[q % self.clients].push(outputs[copy].workflow.clone());
        }
        fusion_cluster::engine::Engine::new(spec.clone())
            .run_closed_loop(clients)
            .stats
    }
}

/// Latency summary of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: Nanos,
    /// 99th-percentile latency.
    pub p99: Nanos,
}

/// Summarizes per-query stats.
pub fn summarize(stats: &[WorkflowStats]) -> LatencySummary {
    let lats: Vec<Nanos> = stats.iter().map(|s| s.latency).collect();
    LatencySummary {
        p50: percentile(&lats, 50.0),
        p99: percentile(&lats, 99.0),
    }
}

/// Relative reduction `(base − new) / base`, for "X% lower latency"
/// reporting.
pub fn reduction(base: Nanos, new: Nanos) -> f64 {
    if base == Nanos::ZERO {
        return 0.0;
    }
    (base.0 as f64 - new.0 as f64) / base.0 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> BenchEnv {
        BenchEnv::new(0.02, 2, 20, 4)
    }

    #[test]
    fn store_caching_and_replay() {
        let env = tiny_env();
        let store = env.lineitem_store(SystemKind::Fusion);
        assert_eq!(store.object_names().len(), 2);
        let outputs = env.outputs_per_copy(store, "lineitem", |obj| {
            format!("SELECT linenumber FROM {obj} WHERE linenumber < 2")
        });
        assert_eq!(outputs.len(), 2);
        let stats = env.replay(store, &outputs);
        assert_eq!(stats.len(), 20);
        let s = summarize(&stats);
        assert!(s.p99 >= s.p50);
        assert!(s.p50 > Nanos::ZERO);
    }

    #[test]
    fn reduction_math() {
        assert!((reduction(Nanos(100), Nanos(40)) - 0.6).abs() < 1e-12);
        assert_eq!(reduction(Nanos::ZERO, Nanos(5)), 0.0);
        assert!(reduction(Nanos(100), Nanos(150)) < 0.0);
    }

    #[test]
    fn scaled_block_ratio() {
        assert_eq!(BenchEnv::scaled_block(10 << 20), (10 << 20) / 100);
        assert_eq!(BenchEnv::scaled_block(1000), 16 << 10); // floor
    }
}
