//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p fusion-bench --bin figures -- all
//! cargo run --release -p fusion-bench --bin figures -- fig13 fig15 --scale 0.5 --queries 500
//! ```
//!
//! Options:
//! * `--scale F`   dataset scale relative to the repo default (default 0.5)
//! * `--queries N` queries per experiment cell (default 500; paper 10 000)
//! * `--copies N`  object copies per file (default 10, as in the paper)
//! * `--clients N` concurrent closed-loop clients (default 10)
//! * `--out DIR`   also write each artifact to `DIR/<id>.txt` (default `results/`)

use fusion_bench::figures::{run, ALL_IDS};
use fusion_bench::harness::BenchEnv;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = 0.5f64;
    let mut queries = 500usize;
    let mut copies = 10usize;
    let mut clients = 10usize;
    let mut out_dir = String::from("results");

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => scale = take(&mut i).parse().expect("numeric --scale"),
            "--queries" => queries = take(&mut i).parse().expect("integer --queries"),
            "--copies" => copies = take(&mut i).parse().expect("integer --copies"),
            "--clients" => clients = take(&mut i).parse().expect("integer --clients"),
            "--out" => out_dir = take(&mut i),
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                eprintln!("usage: figures [all | <id>...] [--scale F] [--queries N] [--copies N] [--clients N] [--out DIR]");
                eprintln!("ids: {}", ALL_IDS.join(" "));
                return;
            }
            other => {
                if ALL_IDS.contains(&other) || other.starts_with("debugcol") {
                    ids.push(other.to_string());
                } else {
                    eprintln!("unknown artifact id {other}; known: {}", ALL_IDS.join(" "));
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let env = BenchEnv::new(scale, copies, queries, clients);
    println!("fusion figures: scale={scale} copies={copies} queries={queries} clients={clients}\n");
    for id in &ids {
        let t0 = std::time::Instant::now();
        let text = run(id, &env);
        println!("===== {id} ({:.1?}) =====", t0.elapsed());
        println!("{text}");
        std::fs::write(format!("{out_dir}/{id}.txt"), &text).expect("write artifact");
    }
}
