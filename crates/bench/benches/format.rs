//! Columnar format hot paths: chunk encode/decode for the three column
//! regimes (low-cardinality dictionary, incompressible numerics, text),
//! plus footer parse — the only format work on FAC's Put critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fusion_format::chunk::{decode_column_chunk, encode_column_chunk};
use fusion_format::schema::LogicalType;
use fusion_format::value::ColumnData;
use fusion_workloads::tpch::{lineitem_file, TpchConfig};

fn columns() -> Vec<(&'static str, ColumnData, LogicalType)> {
    let n = 100_000;
    vec![
        (
            "dict_strings",
            ColumnData::Utf8(
                (0..n)
                    .map(|i| ["AIR", "RAIL", "SHIP", "TRUCK"][i % 4].into())
                    .collect(),
            ),
            LogicalType::Utf8,
        ),
        (
            "random_floats",
            ColumnData::Float64((0..n).map(|i| (i as f64 * 77.7).sin() * 1e6).collect()),
            LogicalType::Float64,
        ),
        (
            "text",
            ColumnData::Utf8(
                (0..n / 10)
                    .map(|i| format!("free text value number {i} with some words"))
                    .collect(),
            ),
            LogicalType::Utf8,
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_encode");
    for (name, col, _) in columns() {
        g.throughput(Throughput::Bytes(col.plain_size() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &col, |b, col| {
            b.iter(|| encode_column_chunk(std::hint::black_box(col)));
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_decode");
    for (name, col, ty) in columns() {
        let (bytes, _) = encode_column_chunk(&col);
        g.throughput(Throughput::Bytes(col.plain_size() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            b.iter(|| decode_column_chunk(std::hint::black_box(bytes), ty).expect("valid chunk"));
        });
    }
    g.finish();
}

fn bench_footer_parse(c: &mut Criterion) {
    let file = lineitem_file(TpchConfig {
        rows_per_group: 2_000,
        row_groups: 10,
        seed: 3,
    });
    c.bench_function("footer_parse_160_chunks", |b| {
        b.iter(|| fusion_format::footer::parse_footer(std::hint::black_box(&file)).expect("valid"));
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_footer_parse);
criterion_main!(benches);
