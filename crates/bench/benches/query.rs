//! End-to-end query-path benchmarks: the real data plane (decode +
//! filter + project + workflow construction) for both executors on a
//! scaled lineitem object.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_bench::harness::{BenchEnv, SystemKind};
use fusion_core::store::Store;
use fusion_ec::codec::CodecKind;

fn stores() -> (BenchEnv, Store, Store) {
    let env = BenchEnv::new(0.05, 1, 1, 1);
    let file = env.lineitem_file().to_vec();
    let fusion = env.build_store(SystemKind::Fusion, "lineitem", &file);
    let baseline = env.build_store(SystemKind::Baseline, "lineitem", &file);
    (env, fusion, baseline)
}

fn bench_query_dataplane(c: &mut Criterion) {
    let (_env, fusion, baseline) = stores();
    let queries = [
        (
            "selective_filter",
            "SELECT extendedprice FROM x WHERE extendedprice < 950.0",
        ),
        (
            "aggregate",
            "SELECT count(*), avg(discount) FROM x WHERE quantity < 10",
        ),
        (
            "multi_filter",
            "SELECT suppkey FROM x WHERE quantity < 25 AND discount < 0.05",
        ),
    ];
    let mut g = c.benchmark_group("query_dataplane");
    g.sample_size(20);
    for (name, sql) in queries {
        g.bench_with_input(BenchmarkId::new("fusion", name), &sql, |b, sql| {
            b.iter(|| {
                fusion
                    .query_as("lineitem_0", std::hint::black_box(sql))
                    .expect("runs")
            });
        });
        g.bench_with_input(BenchmarkId::new("baseline", name), &sql, |b, sql| {
            b.iter(|| {
                baseline
                    .query_as("lineitem_0", std::hint::black_box(sql))
                    .expect("runs")
            });
        });
    }
    g.finish();
}

fn bench_put(c: &mut Criterion) {
    let env = BenchEnv::new(0.02, 1, 1, 1);
    let file = env.lineitem_file().to_vec();
    let mut g = c.benchmark_group("put");
    g.sample_size(10);
    // The put path is encode-bound at large objects, so run it under
    // both GF(2^8) codecs to expose the kernel difference end-to-end.
    for codec in [CodecKind::Scalar, CodecKind::Fast] {
        g.bench_function(format!("fusion_put_160_chunks_{codec}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                let cfg = BenchEnv::store_config(SystemKind::Fusion, file.len(), 10 << 30)
                    .with_codec(codec);
                let mut store = Store::new(cfg).expect("valid config");
                i += 1;
                store.put(&format!("obj{i}"), file.clone()).expect("put")
            });
        });
    }
    g.finish();
}

fn bench_simulation_replay(c: &mut Criterion) {
    // The DES itself: replaying 1000 queries through the engine.
    let env = BenchEnv::new(0.02, 2, 1000, 10);
    let store = env.lineitem_store(SystemKind::Fusion);
    let outputs = env.outputs_per_copy(store, "lineitem", |obj| {
        format!("SELECT extendedprice FROM {obj} WHERE extendedprice < 950.0")
    });
    let mut g = c.benchmark_group("des_replay");
    g.sample_size(10);
    g.bench_function("1000_queries_10_clients", |b| {
        b.iter(|| env.replay(store, std::hint::black_box(&outputs)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_query_dataplane,
    bench_put,
    bench_simulation_replay
);
criterion_main!(benches);
