//! End-to-end query-path benchmarks: the real data plane (decode +
//! filter + project + workflow construction) for both executors on a
//! scaled lineitem object.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_bench::harness::{BenchEnv, SystemKind};
use fusion_core::store::Store;
use fusion_ec::codec::CodecKind;
use fusion_format::chunk::{decode_column_chunk, encode_column_chunk, read_encoded_chunk};
use fusion_format::schema::LogicalType;
use fusion_format::value::{ColumnData, Value};
use fusion_sql::ast::CmpOp;
use fusion_sql::eval::{eval_filter, eval_filter_encoded};
use fusion_sql::plan::FilterLeaf;

fn stores() -> (BenchEnv, Store, Store) {
    let env = BenchEnv::new(0.05, 1, 1, 1);
    let file = env.lineitem_file().to_vec();
    let fusion = env.build_store(SystemKind::Fusion, "lineitem", &file);
    let baseline = env.build_store(SystemKind::Baseline, "lineitem", &file);
    (env, fusion, baseline)
}

fn bench_query_dataplane(c: &mut Criterion) {
    let (_env, fusion, baseline) = stores();
    let queries = [
        (
            "selective_filter",
            "SELECT extendedprice FROM x WHERE extendedprice < 950.0",
        ),
        (
            "aggregate",
            "SELECT count(*), avg(discount) FROM x WHERE quantity < 10",
        ),
        (
            "multi_filter",
            "SELECT suppkey FROM x WHERE quantity < 25 AND discount < 0.05",
        ),
    ];
    let mut g = c.benchmark_group("query_dataplane");
    g.sample_size(20);
    for (name, sql) in queries {
        g.bench_with_input(BenchmarkId::new("fusion", name), &sql, |b, sql| {
            b.iter(|| {
                fusion
                    .query_as("lineitem_0", std::hint::black_box(sql))
                    .expect("runs")
            });
        });
        g.bench_with_input(BenchmarkId::new("baseline", name), &sql, |b, sql| {
            b.iter(|| {
                baseline
                    .query_as("lineitem_0", std::hint::black_box(sql))
                    .expect("runs")
            });
        });
    }
    g.finish();
}

fn bench_filter_kernels(c: &mut Criterion) {
    // The filter-stage scan in isolation: decode-then-filter (scalar)
    // vs the encoded-domain kernels over a cold parse and a hot
    // (cache-resident) view, per column shape, Lt at ~10% selectivity.
    const ROWS: usize = 1 << 18;
    type Shape = (&'static str, fn(usize) -> i64, i64);
    let shapes: [Shape; 3] = [
        (
            "dictionary",
            |i| (i.wrapping_mul(2_654_435_761) % 1000) as i64,
            100,
        ),
        ("rle", |i| (i / 256) as i64, (ROWS / 2560) as i64),
        (
            "plain",
            |i| (i.wrapping_mul(2_654_435_761) & 0xFFFF_FFFF) as i64,
            (1i64 << 32) / 10,
        ),
    ];
    let mut g = c.benchmark_group("filter_scan");
    for (name, gen, threshold) in shapes {
        let col = ColumnData::Int64((0..ROWS).map(gen).collect());
        let (bytes, _) = encode_column_chunk(&col);
        let hot = read_encoded_chunk(&bytes, LogicalType::Int64).expect("valid chunk");
        let leaf = FilterLeaf {
            id: 0,
            column: 0,
            column_name: "v".into(),
            op: CmpOp::Lt,
            constant: Value::Int(threshold),
        };
        g.bench_with_input(BenchmarkId::new("scalar", name), &leaf, |b, leaf| {
            b.iter(|| {
                let decoded = decode_column_chunk(&bytes, LogicalType::Int64).expect("decode");
                eval_filter(std::hint::black_box(leaf), &decoded).expect("eval")
            });
        });
        g.bench_with_input(BenchmarkId::new("encoded_cold", name), &leaf, |b, leaf| {
            b.iter(|| {
                let view = read_encoded_chunk(&bytes, LogicalType::Int64).expect("parse");
                eval_filter_encoded(std::hint::black_box(leaf), &view).expect("eval")
            });
        });
        g.bench_with_input(BenchmarkId::new("encoded_hot", name), &leaf, |b, leaf| {
            b.iter(|| eval_filter_encoded(std::hint::black_box(leaf), &hot).expect("eval"));
        });
    }
    g.finish();
}

fn bench_grouped_aggregate(c: &mut Criterion) {
    // GROUP BY pushdown: the end-to-end grouped query on both executors,
    // plus the keyed kernels in isolation (code-indexed encoded-domain
    // accumulation vs decode-then-hash-group).
    use fusion_sql::ast::AggFunc;
    use fusion_sql::bitmap::Bitmap;
    use fusion_sql::eval::{group_aggregate_decoded, group_aggregate_encoded, AggInput};

    let env = BenchEnv::new(0.05, 1, 1, 1);
    let file = env.lineitem_file().to_vec();
    let mut cfg = BenchEnv::store_config(SystemKind::Fusion, file.len(), 10 << 30);
    cfg.aggregate_pushdown = true;
    let mut fusion = Store::new(cfg).expect("valid config");
    fusion.put("lineitem_0", file.clone()).expect("put");
    let baseline = env.build_store(SystemKind::Baseline, "lineitem", &file);
    let sql = "SELECT returnflag, count(*), sum(quantity), avg(extendedprice) \
               FROM lineitem_0 WHERE quantity < 25 GROUP BY returnflag";

    let mut g = c.benchmark_group("grouped_aggregate");
    g.sample_size(20);
    g.bench_function("fusion_pushdown", |b| {
        b.iter(|| {
            fusion
                .query_as("lineitem_0", std::hint::black_box(sql))
                .expect("runs")
        });
    });
    g.bench_function("baseline_reassemble", |b| {
        b.iter(|| {
            baseline
                .query_as("lineitem_0", std::hint::black_box(sql))
                .expect("runs")
        });
    });

    // Kernel-only: a dictionary/RLE key over 2^18 rows, one aggregate of
    // each input kind, ~90% selectivity.
    const ROWS: usize = 1 << 18;
    let key = ColumnData::Int64((0..ROWS).map(|i| (i / 256 % 64) as i64).collect());
    let (bytes, _) = encode_column_chunk(&key);
    let hot = read_encoded_chunk(&bytes, LogicalType::Int64).expect("valid chunk");
    let arg = ColumnData::Float64((0..ROWS).map(|i| i as f64 * 0.25).collect());
    let filter: Bitmap = (0..ROWS).map(|i| i % 10 != 0).collect();
    let aggs_enc = [
        (AggFunc::Count, AggInput::Star),
        (AggFunc::Sum, AggInput::Col(&arg)),
        (AggFunc::Min, AggInput::Key),
    ];
    let decoded_key = decode_column_chunk(&bytes, LogicalType::Int64).expect("decode");
    let aggs_dec: Vec<(AggFunc, Option<&ColumnData>)> = vec![
        (AggFunc::Count, None),
        (AggFunc::Sum, Some(&arg)),
        (AggFunc::Min, Some(&decoded_key)),
    ];
    g.bench_function("kernel_encoded_hot", |b| {
        b.iter(|| group_aggregate_encoded(&hot, std::hint::black_box(&aggs_enc), &filter))
    });
    g.bench_function("kernel_decode_then_group", |b| {
        b.iter(|| {
            let decoded = decode_column_chunk(&bytes, LogicalType::Int64).expect("decode");
            group_aggregate_decoded(&[&decoded], std::hint::black_box(&aggs_dec), &filter)
        })
    });
    g.finish();
}

fn bench_put(c: &mut Criterion) {
    let env = BenchEnv::new(0.02, 1, 1, 1);
    let file = env.lineitem_file().to_vec();
    let mut g = c.benchmark_group("put");
    g.sample_size(10);
    // The put path is encode-bound at large objects, so run it under
    // both GF(2^8) codecs to expose the kernel difference end-to-end.
    for codec in [CodecKind::Scalar, CodecKind::Fast] {
        g.bench_function(format!("fusion_put_160_chunks_{codec}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                let cfg = BenchEnv::store_config(SystemKind::Fusion, file.len(), 10 << 30)
                    .with_codec(codec);
                let mut store = Store::new(cfg).expect("valid config");
                i += 1;
                store.put(&format!("obj{i}"), file.clone()).expect("put")
            });
        });
    }
    g.finish();
}

fn bench_simulation_replay(c: &mut Criterion) {
    // The DES itself: replaying 1000 queries through the engine.
    let env = BenchEnv::new(0.02, 2, 1000, 10);
    let store = env.lineitem_store(SystemKind::Fusion);
    let outputs = env.outputs_per_copy(store, "lineitem", |obj| {
        format!("SELECT extendedprice FROM {obj} WHERE extendedprice < 950.0")
    });
    let mut g = c.benchmark_group("des_replay");
    g.sample_size(10);
    g.bench_function("1000_queries_10_clients", |b| {
        b.iter(|| env.replay(store, std::hint::black_box(&outputs)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_query_dataplane,
    bench_filter_kernels,
    bench_grouped_aggregate,
    bench_put,
    bench_simulation_replay
);
criterion_main!(benches);
