//! Reed-Solomon hot paths: stripe encode and reconstruction, for the
//! paper's two production codes — each under both GF(2^8) kernels
//! (`scalar` log/exp reference vs the `fast` split-nibble codec).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fusion_ec::codec::CodecKind;
use fusion_ec::rs::ReedSolomon;

const CODECS: [CodecKind; 2] = [CodecKind::Scalar, CodecKind::Fast];

fn stripe(k: usize, block: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..block).map(|j| (i * 31 + j * 7) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode");
    for (n, k) in [(9usize, 6usize), (14, 10)] {
        for codec in CODECS {
            let rs = ReedSolomon::with_codec(n, k, codec).expect("valid params");
            let block = 1 << 20;
            let data = stripe(k, block);
            g.throughput(Throughput::Bytes((k * block) as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("rs({n},{k})_{codec}"), "1MiB_blocks"),
                &data,
                |b, d| {
                    b.iter(|| rs.encode(std::hint::black_box(d)));
                },
            );
        }
    }
    g.finish();
}

fn bench_encode_into(c: &mut Criterion) {
    // The Store hot path: parity buffers reused across stripes, so this
    // isolates kernel throughput from allocator noise.
    let mut g = c.benchmark_group("rs_encode_into");
    for codec in CODECS {
        let rs = ReedSolomon::with_codec(9, 6, codec).expect("valid params");
        let block = 1 << 20;
        let data = stripe(6, block);
        let mut parity = Vec::new();
        g.throughput(Throughput::Bytes((6 * block) as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("rs(9,6)_{codec}"), "reused_buffers"),
            &data,
            |b, d| {
                b.iter(|| {
                    rs.encode_into(std::hint::black_box(d), &mut parity);
                    parity.len()
                });
            },
        );
    }
    g.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_reconstruct");
    for codec in CODECS {
        let rs = ReedSolomon::with_codec(9, 6, codec).expect("valid params");
        let block = 1 << 20;
        let data = stripe(6, block);
        let parity = rs.encode(&data);
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        for losses in [1usize, 3] {
            g.throughput(Throughput::Bytes((6 * block) as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("rs(9,6)_{codec}"), format!("{losses}_losses")),
                &losses,
                |b, &l| {
                    b.iter(|| {
                        let mut shards: Vec<Option<Vec<u8>>> =
                            full.iter().cloned().map(Some).collect();
                        for i in 0..l {
                            shards[i * 3] = None;
                        }
                        rs.reconstruct(&mut shards, block).expect("recoverable");
                        shards
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_variable_stripe(c: &mut Criterion) {
    // FAC's case: unequal block lengths, parity sized to the largest.
    let lens = [1 << 20, 1 << 18, 1 << 19, 1 << 16, 1 << 20, 1 << 14];
    let data: Vec<Vec<u8>> = lens
        .iter()
        .enumerate()
        .map(|(i, &l)| (0..l).map(|j| (i + j) as u8).collect())
        .collect();
    let total: u64 = lens.iter().map(|&l| l as u64).sum();
    let mut g = c.benchmark_group("rs_variable_blocks");
    for codec in CODECS {
        let rs = ReedSolomon::with_codec(9, 6, codec).expect("valid params");
        g.throughput(Throughput::Bytes(total));
        g.bench_function(format!("rs(9,6)_{codec}_fac_stripe"), |b| {
            b.iter(|| rs.encode(std::hint::black_box(&data)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_encode_into,
    bench_reconstruct,
    bench_variable_stripe
);
criterion_main!(benches);
