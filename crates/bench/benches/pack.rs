//! Packer micro-benchmarks — the numbers behind Figure 16c: FAC must be
//! microseconds even at thousands of chunks, while the oracle blows up
//! past a few dozen.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_core::layout::{fac, fixed, oracle, padding, PackItem};
use fusion_workloads::synth::{zipf_chunk_sizes, SynthConfig};
use std::time::Duration;

fn items(n: usize, theta: f64) -> Vec<PackItem> {
    let sizes = zipf_chunk_sizes(SynthConfig {
        num_chunks: n,
        theta,
        seed: 0xBE_7C + n as u64,
        ..Default::default()
    });
    let mut out = Vec::with_capacity(n);
    let mut pos = 0u64;
    for (i, s) in sizes.into_iter().enumerate() {
        out.push(PackItem {
            chunk: i,
            start: pos,
            end: pos + s,
        });
        pos += s;
    }
    out
}

fn bench_fac(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_fac");
    for n in [160usize, 1000, 5000] {
        let its = items(n, 0.5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &its, |b, its| {
            b.iter(|| fac::pack(6, std::hint::black_box(its)));
        });
    }
    g.finish();
}

fn bench_alternatives(c: &mut Criterion) {
    let its = items(160, 0.5); // a lineitem-sized object
    let len: u64 = its.last().map_or(0, |i| i.end);
    let mut g = c.benchmark_group("pack_alternatives_160_chunks");
    g.bench_function("fac", |b| {
        b.iter(|| fac::pack(6, std::hint::black_box(&its)))
    });
    g.bench_function("padding", |b| {
        b.iter(|| padding::pack(100 << 20, 6, std::hint::black_box(&its)))
    });
    g.bench_function("fixed", |b| {
        b.iter(|| fixed::pack(len, 100 << 20, 6, std::hint::black_box(&its)))
    });
    g.finish();
}

fn bench_oracle_small(c: &mut Criterion) {
    // Exact solves stay feasible only for small instances (Fig 10a).
    let mut g = c.benchmark_group("pack_oracle");
    g.sample_size(10);
    for n in [10usize, 20] {
        let its = items(n, 0.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &its, |b, its| {
            b.iter(|| oracle::pack(6, std::hint::black_box(its), Duration::from_secs(30)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fac, bench_alternatives, bench_oracle_small);
criterion_main!(benches);
