//! Snappy codec throughput on the three regimes that matter to the store:
//! highly repetitive pages, text, and incompressible data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn inputs() -> Vec<(&'static str, Vec<u8>)> {
    let repetitive: Vec<u8> = (0..1 << 20).map(|i| ((i / 4096) % 7) as u8).collect();
    let text: Vec<u8> = fusion_workloads::text::WORDS
        .iter()
        .cycle()
        .take(150_000)
        .flat_map(|w| {
            let mut v = w.as_bytes().to_vec();
            v.push(b' ');
            v
        })
        .collect();
    let mut x = 0x2545F491_u64;
    let random: Vec<u8> = (0..1 << 20)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    vec![
        ("repetitive", repetitive),
        ("text", text),
        ("random", random),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("snappy_compress");
    for (name, data) in inputs() {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, d| {
            b.iter(|| fusion_snappy::compress(std::hint::black_box(d)));
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut g = c.benchmark_group("snappy_decompress");
    for (name, data) in inputs() {
        let compressed = fusion_snappy::compress(&data);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &compressed, |b, d| {
            b.iter(|| fusion_snappy::decompress(std::hint::black_box(d)).expect("valid stream"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
