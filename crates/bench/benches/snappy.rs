//! `compression` criterion group: fast vs scalar-reference Snappy
//! kernels, both directions, on the three regimes that matter to the
//! store: highly repetitive pages, text, and incompressible data.
//!
//! `figures -- snappy_throughput` is the committed calibration run;
//! this group is for interactive kernel work (`cargo bench -p
//! fusion-bench --bench snappy`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn inputs() -> Vec<(&'static str, Vec<u8>)> {
    let repetitive: Vec<u8> = (0..1 << 20).map(|i| ((i / 4096) % 7) as u8).collect();
    let text: Vec<u8> = fusion_workloads::text::WORDS
        .iter()
        .cycle()
        .take(150_000)
        .flat_map(|w| {
            let mut v = w.as_bytes().to_vec();
            v.push(b' ');
            v
        })
        .collect();
    let mut x = 0x2545F491_u64;
    let random: Vec<u8> = (0..1 << 20)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    vec![
        ("repetitive", repetitive),
        ("text", text),
        ("random", random),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("compression/compress");
    for (name, data) in inputs() {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("scalar", name), &data, |b, d| {
            b.iter(|| fusion_snappy::reference::compress(std::hint::black_box(d)));
        });
        g.bench_with_input(BenchmarkId::new("fast", name), &data, |b, d| {
            let mut enc = fusion_snappy::Encoder::new();
            let mut out = Vec::new();
            b.iter(|| {
                enc.compress_into(std::hint::black_box(d), &mut out);
                std::hint::black_box(&out);
            });
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut g = c.benchmark_group("compression/decompress");
    for (name, data) in inputs() {
        let compressed = fusion_snappy::compress(&data);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("scalar", name), &compressed, |b, d| {
            b.iter(|| {
                fusion_snappy::reference::decompress(std::hint::black_box(d)).expect("valid stream")
            });
        });
        g.bench_with_input(BenchmarkId::new("fast", name), &compressed, |b, d| {
            let mut out = Vec::new();
            b.iter(|| {
                fusion_snappy::decompress_into(std::hint::black_box(d), &mut out)
                    .expect("valid stream");
                std::hint::black_box(&out);
            });
        });
    }
    g.finish();
}

criterion_group!(compression, bench_compress, bench_decompress);
criterion_main!(compression);
