//! Filter-bitmap hot paths: predicate evaluation, boolean combination,
//! and the compress-for-the-wire step of the filter stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fusion_format::value::{ColumnData, Value};
use fusion_sql::ast::CmpOp;
use fusion_sql::bitmap::Bitmap;
use fusion_sql::eval::eval_filter;
use fusion_sql::plan::FilterLeaf;

const N: usize = 1_000_000;

fn leaf(op: CmpOp, constant: Value) -> FilterLeaf {
    FilterLeaf {
        id: 0,
        column: 0,
        column_name: "c".into(),
        op,
        constant,
    }
}

fn bench_eval(c: &mut Criterion) {
    let ints = ColumnData::Int64(
        (0..N as i64)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect(),
    );
    let strings = ColumnData::Utf8((0..N / 10).map(|i| format!("val{:06}", i % 5000)).collect());
    let mut g = c.benchmark_group("filter_eval");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("int_lt", |b| {
        let l = leaf(CmpOp::Lt, Value::Int(0));
        b.iter(|| eval_filter(&l, std::hint::black_box(&ints)).expect("typed"));
    });
    g.throughput(Throughput::Elements((N / 10) as u64));
    g.bench_function("string_eq", |b| {
        let l = leaf(CmpOp::Eq, Value::Str("val000042".into()));
        b.iter(|| eval_filter(&l, std::hint::black_box(&strings)).expect("typed"));
    });
    g.finish();
}

fn bench_combine_ops(c: &mut Criterion) {
    let a: Bitmap = (0..N).map(|i| i % 3 == 0).collect();
    let b2: Bitmap = (0..N).map(|i| i % 7 == 0).collect();
    let mut g = c.benchmark_group("bitmap_ops");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("and", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.and_assign(std::hint::black_box(&b2));
            x
        });
    });
    g.bench_function("count_ones", |b| {
        b.iter(|| std::hint::black_box(&a).count_ones())
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_wire");
    for sel in [0.001f64, 0.5] {
        let bm: Bitmap = (0..N).map(|i| (i as f64 / N as f64) < sel).collect();
        let bytes = bm.to_bytes();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("compress", format!("sel_{sel}")),
            &bytes,
            |b, bytes| b.iter(|| fusion_snappy::compress(std::hint::black_box(bytes))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_eval, bench_combine_ops, bench_wire);
criterion_main!(benches);
