//! Metadata hot paths: rendezvous stripe placement as cluster size
//! grows, compact-record chunk resolution through the namespace, and
//! the stored-map table lookup it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fusion_cluster::topology::Topology;
use fusion_core::config::EcConfig;
use fusion_core::location_map::LocationMap;
use fusion_core::meta::{LayoutRecord, Membership, Namespace};
use fusion_core::placement::{object_id, object_key, place_stripe, StripeShape};

const SEED: u64 = 0xF051_0A11;
const OBJECTS: usize = 10_000;
const CHUNKS: u32 = 64;

fn shape() -> StripeShape {
    StripeShape::from_codec(
        &*EcConfig::RS_9_6
            .build_codec(fusion_ec::codec::CodecKind::Scalar)
            .expect("valid code"),
    )
}

/// Raw rendezvous placement of one RS(9,6) stripe at growing cluster
/// sizes — the O(shards × nodes) inner loop of every compact lookup.
fn bench_place_stripe(c: &mut Criterion) {
    let shape = shape();
    let okey = object_key("bench", "obj");
    let mut g = c.benchmark_group("placement_lookup");
    for nodes in [16usize, 64, 256] {
        let topo = Topology::racks(nodes, 8);
        let members: Vec<usize> = (0..nodes).collect();
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("place_stripe", nodes), &nodes, |b, _| {
            let mut stripe = 0u64;
            b.iter(|| {
                stripe = stripe.wrapping_add(1);
                place_stripe(SEED, okey, stripe, &shape, &members, &topo)
            });
        });
    }
    g.finish();
}

/// End-to-end compact resolution (shard hash → record → rendezvous) vs
/// the stored-map baseline (shard hash → map → table index), over a
/// 10k-object namespace on 64 nodes.
fn bench_chunk_node(c: &mut Criterion) {
    let topo = Topology::racks(64, 8);
    let ns = Namespace::new(SEED, 64, EcConfig::RS_9_6, Membership::full(topo.clone()))
        .expect("valid code");
    let mut ids = Vec::with_capacity(OBJECTS);
    for i in 0..OBJECTS {
        let id = object_id("bench", &format!("obj-{i}"));
        ns.insert(
            id,
            LayoutRecord {
                epoch: 0,
                chunks: CHUNKS,
                size: u64::from(CHUNKS) << 20,
                code: EcConfig::RS_9_6.into(),
                exceptions: Vec::new(),
            },
        );
        ids.push(id);
    }
    // The stored-map baseline: one materialized paper-format map per
    // object, resolved by table lookup.
    let shape = shape();
    let members: Vec<usize> = (0..64).collect();
    let maps: Vec<LocationMap> = ids
        .iter()
        .map(|id| {
            let entries = (0..CHUNKS)
                .map(|c| {
                    let stripe = u64::from(c / 6);
                    let nodes =
                        place_stripe(SEED, id.placement_key(), stripe, &shape, &members, &topo);
                    fusion_core::location_map::LocationEntry {
                        chunk_offset: c << 20,
                        node: nodes[(c % 6) as usize] as u32,
                    }
                })
                .collect();
            LocationMap { entries }
        })
        .collect();

    let mut g = c.benchmark_group("placement_lookup");
    g.throughput(Throughput::Elements(1));
    g.bench_function("namespace_chunk_node", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            let id = ids[i % OBJECTS];
            ns.chunk_node(id, (i % CHUNKS as usize) as u32)
                .expect("resolves")
        });
    });
    g.bench_function("stored_map_node_of", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            maps[i % OBJECTS]
                .node_of(i % CHUNKS as usize)
                .expect("resolves")
        });
    });
    g.finish();
}

criterion_group!(placement_lookup, bench_place_stripe, bench_chunk_node);
criterion_main!(placement_lookup);
