//! Code-agnostic stripe interface: the object-safe subset of erasure-code
//! behavior the store needs, implemented by both [`ReedSolomon`] (MDS,
//! any `k` survivors rebuild anything) and [`LrcCodec`] (locally
//! repairable, single losses rebuild from a small group).
//!
//! The store holds an `Arc<dyn StripeCodec>` and never branches on the
//! concrete code: placement asks [`StripeCodec::placement_group`] which
//! shards must be kept in distinct failure domains, degraded reads and
//! repair ask [`StripeCodec::repair_sources`] which shards to fetch, and
//! both paths feed the result to [`StripeCodec::repair_one`] /
//! [`StripeCodec::reconstruct`].

use crate::lrc::LrcCodec;
use crate::rs::{ReconstructError, ReedSolomon};

/// Object-safe erasure-code interface over variable-width stripes.
///
/// Shard indexing convention: data blocks occupy `0..data_blocks()`,
/// parity the rest. All byte semantics follow the implicit zero-padding
/// rule — shards may be shorter than the stripe width and compare equal
/// to their padded form.
pub trait StripeCodec: std::fmt::Debug + Send + Sync {
    /// Total blocks per stripe (`n`).
    fn total_blocks(&self) -> usize;

    /// Data blocks per stripe (`k`).
    fn data_blocks(&self) -> usize;

    /// Parity blocks per stripe (`n − k`).
    fn parity_blocks(&self) -> usize {
        self.total_blocks() - self.data_blocks()
    }

    /// How many simultaneous shard losses the code guarantees to recover
    /// from, regardless of which shards are lost. Equals `n − k` for MDS
    /// codes; strictly less for locally-repairable codes.
    fn tolerance(&self) -> usize;

    /// Encodes `k` data blocks into `n − k` parity blocks, reusing the
    /// caller's buffers.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    fn encode_into(&self, data: &[Vec<u8>], parity: &mut Vec<Vec<u8>>);

    /// Verifies a full stripe's parity consistency.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != n`.
    fn verify(&self, shards: &[&[u8]]) -> bool;

    /// Recovers all missing shards in place.
    ///
    /// # Errors
    ///
    /// See [`ReconstructError`]; non-MDS codes may also return
    /// [`ReconstructError::NotRecoverable`] for masks their survivors do
    /// not span.
    fn reconstruct(
        &self,
        shards: &mut [Option<Vec<u8>>],
        width: usize,
    ) -> Result<(), ReconstructError>;

    /// Recovers one lost shard in place from whichever shards are
    /// present — typically exactly the set returned by
    /// [`StripeCodec::repair_sources`].
    ///
    /// # Errors
    ///
    /// See [`ReconstructError`].
    fn repair_one(
        &self,
        shards: &mut [Option<Vec<u8>>],
        lost: usize,
        width: usize,
    ) -> Result<(), ReconstructError>;

    /// The cheapest shard set that rebuilds `lost` given the current
    /// availability mask, or `None` when unrecoverable. The returned
    /// indices are what a repair must actually read — their count times
    /// the stripe width is the repair traffic.
    ///
    /// # Panics
    ///
    /// Panics if `available.len() != n`.
    fn repair_sources(&self, lost: usize, available: &[bool]) -> Option<Vec<usize>>;

    /// The repair-locality group of a shard, if the code has one. Shards
    /// sharing a group must land in distinct failure domains so a domain
    /// outage costs each group at most one shard (keeping cheap local
    /// repair available). MDS codes return `None` for every shard.
    fn placement_group(&self, shard: usize) -> Option<usize>;

    /// Human-readable code label (e.g. `RS(9, 6)`), used in results
    /// files and traces.
    fn label(&self) -> String;
}

impl StripeCodec for ReedSolomon {
    fn total_blocks(&self) -> usize {
        ReedSolomon::total_blocks(self)
    }

    fn data_blocks(&self) -> usize {
        ReedSolomon::data_blocks(self)
    }

    fn tolerance(&self) -> usize {
        ReedSolomon::parity_blocks(self)
    }

    fn encode_into(&self, data: &[Vec<u8>], parity: &mut Vec<Vec<u8>>) {
        ReedSolomon::encode_into(self, data, parity);
    }

    fn verify(&self, shards: &[&[u8]]) -> bool {
        ReedSolomon::verify(self, shards)
    }

    fn reconstruct(
        &self,
        shards: &mut [Option<Vec<u8>>],
        width: usize,
    ) -> Result<(), ReconstructError> {
        ReedSolomon::reconstruct(self, shards, width)
    }

    fn repair_one(
        &self,
        shards: &mut [Option<Vec<u8>>],
        _lost: usize,
        width: usize,
    ) -> Result<(), ReconstructError> {
        // MDS: single-shard repair is plain reconstruction from any k.
        ReedSolomon::reconstruct(self, shards, width)
    }

    fn repair_sources(&self, lost: usize, available: &[bool]) -> Option<Vec<usize>> {
        let n = ReedSolomon::total_blocks(self);
        let k = ReedSolomon::data_blocks(self);
        assert_eq!(available.len(), n, "expected n availability flags");
        // Any k survivors work; prefer data shards (no decode matrix
        // needed for the systematic part) exactly like the store's
        // existing k-shard selection.
        let all: Vec<usize> = (0..n).filter(|&i| available[i] && i != lost).collect();
        let picked: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| i < k)
            .chain(all.iter().copied().filter(|&i| i >= k))
            .take(k)
            .collect();
        if picked.len() == k {
            Some(picked)
        } else {
            None
        }
    }

    fn placement_group(&self, _shard: usize) -> Option<usize> {
        None
    }

    fn label(&self) -> String {
        self.to_string()
    }
}

impl StripeCodec for LrcCodec {
    fn total_blocks(&self) -> usize {
        LrcCodec::total_blocks(self)
    }

    fn data_blocks(&self) -> usize {
        LrcCodec::data_blocks(self)
    }

    fn tolerance(&self) -> usize {
        LrcCodec::tolerance(self)
    }

    fn encode_into(&self, data: &[Vec<u8>], parity: &mut Vec<Vec<u8>>) {
        LrcCodec::encode_into(self, data, parity);
    }

    fn verify(&self, shards: &[&[u8]]) -> bool {
        LrcCodec::verify(self, shards)
    }

    fn reconstruct(
        &self,
        shards: &mut [Option<Vec<u8>>],
        width: usize,
    ) -> Result<(), ReconstructError> {
        LrcCodec::reconstruct(self, shards, width)
    }

    fn repair_one(
        &self,
        shards: &mut [Option<Vec<u8>>],
        lost: usize,
        width: usize,
    ) -> Result<(), ReconstructError> {
        LrcCodec::repair_one(self, shards, lost, width)
    }

    fn repair_sources(&self, lost: usize, available: &[bool]) -> Option<Vec<usize>> {
        LrcCodec::repair_sources(self, lost, available)
    }

    fn placement_group(&self, shard: usize) -> Option<usize> {
        LrcCodec::group_of(self, shard)
    }

    fn label(&self) -> String {
        self.to_string()
    }
}
