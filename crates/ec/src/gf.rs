//! Arithmetic over the finite field GF(2^8).
//!
//! The field is constructed modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the same polynomial used by most
//! production Reed-Solomon deployments. Multiplication and division are
//! table-driven (log/exp tables) which makes the encoder fast enough for
//! multi-gigabyte stripes without platform-specific SIMD.

/// The primitive polynomial used to generate the field, minus the leading
/// `x^8` term (i.e. the reduction mask applied when the high bit overflows).
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Order of the multiplicative group of GF(2^8).
pub const GROUP_ORDER: usize = 255;

/// Precomputed exp/log tables for GF(2^8).
struct Tables {
    /// `exp[i] = g^i` for generator `g = 2`; doubled length so that
    /// `exp[log[a] + log[b]]` never needs an explicit modulo.
    exp: [u8; 512],
    /// `log[a]` = discrete log of `a` base `g`; `log[0]` is unused.
    log: [u8; 256],
}

impl Tables {
    const fn build() -> Tables {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        let mut i = 0;
        while i < GROUP_ORDER {
            exp[i] = x as u8;
            exp[i + GROUP_ORDER] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
            i += 1;
        }
        // Fill the tail so any index < 512 is safe.
        while i < 512 - GROUP_ORDER {
            exp[i + GROUP_ORDER] = exp[i % GROUP_ORDER];
            i += 1;
        }
        Tables { exp, log }
    }
}

static TABLES: Tables = Tables::build();

/// An element of GF(2^8).
///
/// Addition is XOR; multiplication is polynomial multiplication modulo
/// [`PRIMITIVE_POLY`]. All operations are constant-time table lookups.
///
/// # Examples
///
/// ```
/// use fusion_ec::gf::Gf256;
///
/// let a = Gf256::new(0x53);
/// let b = Gf256::new(0xCA);
/// assert_eq!((a * b) / b, a);
/// assert_eq!(a + a, Gf256::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(v: u8) -> Gf256 {
        Gf256(v)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `g^power` for the field generator `g = 2`.
    #[inline]
    pub fn exp(power: usize) -> Gf256 {
        Gf256(TABLES.exp[power % GROUP_ORDER])
    }

    /// Returns the discrete logarithm of `self` base the generator.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero (zero has no logarithm).
    #[inline]
    pub fn log(self) -> usize {
        assert!(self.0 != 0, "log of zero is undefined in GF(256)");
        TABLES.log[self.0 as usize] as usize
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[inline]
    pub fn inverse(self) -> Gf256 {
        assert!(self.0 != 0, "zero has no inverse in GF(256)");
        Gf256(TABLES.exp[GROUP_ORDER - self.log()])
    }

    /// Raises `self` to an arbitrary power.
    #[inline]
    pub fn pow(self, mut e: usize) -> Gf256 {
        if self.0 == 0 {
            return if e == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        e %= GROUP_ORDER;
        Gf256(TABLES.exp[(self.log() * e) % GROUP_ORDER])
    }

    /// `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl std::ops::Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl std::ops::AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl std::ops::Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl std::ops::Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let li = TABLES.log[self.0 as usize] as usize;
        let lj = TABLES.log[rhs.0 as usize] as usize;
        Gf256(TABLES.exp[li + lj])
    }
}

impl std::ops::MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl std::ops::Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        assert!(rhs.0 != 0, "division by zero in GF(256)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let li = TABLES.log[self.0 as usize] as usize;
        let lj = TABLES.log[rhs.0 as usize] as usize;
        Gf256(TABLES.exp[li + GROUP_ORDER - lj])
    }
}

impl std::fmt::Display for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Gf256 {
        Gf256(v)
    }
}

/// Multiplies every byte of `data` by the constant `c`, XOR-accumulating the
/// products into `acc`. This is the inner loop of Reed-Solomon encoding:
/// `acc[i] ^= c * data[i]`.
///
/// `acc` may be longer than `data`; the tail is left untouched (equivalent to
/// multiplying implicit zero padding).
#[inline]
pub fn mul_acc(acc: &mut [u8], data: &[u8], c: Gf256) {
    if c.0 == 0 {
        return;
    }
    debug_assert!(acc.len() >= data.len());
    if c.0 == 1 {
        for (a, d) in acc.iter_mut().zip(data) {
            *a ^= d;
        }
        return;
    }
    let lc = TABLES.log[c.0 as usize] as usize;
    // A 256-entry product table amortizes the double lookup for long rows.
    let mut table = [0u8; 256];
    for (v, slot) in table.iter_mut().enumerate().skip(1) {
        *slot = TABLES.exp[lc + TABLES.log[v] as usize];
    }
    for (a, d) in acc.iter_mut().zip(data) {
        *a ^= table[*d as usize];
    }
}

/// Multiplies every byte of `data` in place by the constant `c`.
#[inline]
pub fn mul_slice(data: &mut [u8], c: Gf256) {
    if c.0 == 1 {
        return;
    }
    if c.0 == 0 {
        data.fill(0);
        return;
    }
    let lc = TABLES.log[c.0 as usize] as usize;
    let mut table = [0u8; 256];
    for (v, slot) in table.iter_mut().enumerate().skip(1) {
        *slot = TABLES.exp[lc + TABLES.log[v] as usize];
    }
    for d in data.iter_mut() {
        *d = table[*d as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(Gf256(0b1010) + Gf256(0b0110), Gf256(0b1100));
    }

    #[test]
    fn mul_identities() {
        for v in 0..=255u8 {
            let a = Gf256(v);
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn known_products() {
        // Hand-checked products under 0x11D.
        assert_eq!(Gf256(2) * Gf256(2), Gf256(4));
        assert_eq!(Gf256(0x80) * Gf256(2), Gf256(0x1D));
        assert_eq!(Gf256(0x53) * Gf256(0xCA), Gf256(0x8F));
    }

    #[test]
    fn inverse_roundtrip() {
        for v in 1..=255u8 {
            let a = Gf256(v);
            assert_eq!(a * a.inverse(), Gf256::ONE, "inverse failed for {v}");
        }
    }

    #[test]
    fn division_is_mul_by_inverse() {
        for a in 1..=255u8 {
            for b in (1..=255u8).step_by(17) {
                let (a, b) = (Gf256(a), Gf256(b));
                assert_eq!(a / b, a * b.inverse());
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = Gf256(2);
        let mut acc = Gf256::ONE;
        for e in 0..300 {
            assert_eq!(g.pow(e), acc, "pow mismatch at {e}");
            acc *= g;
        }
    }

    #[test]
    fn exp_log_roundtrip() {
        for v in 1..=255u8 {
            assert_eq!(Gf256::exp(Gf256(v).log()), Gf256(v));
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g = 2 must generate all 255 nonzero elements.
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..GROUP_ORDER {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x *= Gf256(2);
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn mul_acc_matches_scalar_path() {
        let data: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut acc = vec![0xA5u8; 256];
            let mut expect = acc.clone();
            mul_acc(&mut acc, &data, Gf256(c));
            for (e, d) in expect.iter_mut().zip(&data) {
                *e ^= (Gf256(c) * Gf256(*d)).0;
            }
            assert_eq!(acc, expect, "mul_acc mismatch for c={c}");
        }
    }

    #[test]
    fn mul_acc_shorter_data_leaves_tail() {
        let mut acc = vec![0x11u8; 8];
        mul_acc(&mut acc, &[0xFF, 0xFF], Gf256(3));
        assert_eq!(&acc[2..], &[0x11; 6]);
    }

    #[test]
    fn mul_slice_matches_scalar_path() {
        let mut data: Vec<u8> = (0..=255).collect();
        let orig = data.clone();
        mul_slice(&mut data, Gf256(0x57));
        for (d, o) in data.iter().zip(&orig) {
            assert_eq!(*d, (Gf256(0x57) * Gf256(*o)).0);
        }
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Gf256(0x1D).to_string(), "0x1d");
    }
}
