//! Locally-repairable codes (LRC) over GF(2^8): Reed-Solomon global
//! parities plus one local parity per group of data blocks, so the common
//! failure — a single lost shard — is repaired by reading only its small
//! local group (`k/l + 1` shards at most) instead of the full `k`
//! survivors an MDS code needs.
//!
//! Construction (pyramid style, Huang et al.): start from the systematic
//! MDS matrix of an `(k + g + 1, k)` Reed-Solomon code and keep its `g +
//! 1` parity rows `P₀ … P_g`. The first row `P₀` is *split* into `l`
//! local parities by masking it to each group's columns; `P₁ … P_g`
//! become the global parities unchanged. Because every local row is a
//! column-masked MDS parity row, any square submatrix one can face while
//! decoding a ≤ `g + 1` erasure pattern is a minor of the MDS parity
//! block — and therefore invertible. The exhaustive loss-mask tests below
//! verify that guarantee directly for the shipped configurations.
//!
//! The code is **not** MDS: `l − 1` parity blocks are "spent" on repair
//! locality, so an `LRC(n, k, l)` stripe guarantees only `n − k − l + 1`
//! simultaneous losses (three for the default LRC(10, 6, 2), the same as
//! RS(9, 6)) while paying one extra block of storage. Beyond-guarantee
//! masks are often still recoverable; [`LrcCodec::reconstruct`] decides
//! by Gaussian elimination over the surviving generator rows rather than
//! by count.

use std::sync::Arc;

use crate::codec::{Codec, CodecKind};
use crate::gf::Gf256;
use crate::matrix::Matrix;
use crate::rs::{pad_eq, CodeParamsError, ReconstructError};

/// A systematic `LRC(n, k, l)` locally-repairable code: `k` data blocks,
/// `l` local XOR-style parities (one per group of `k/l` data blocks), and
/// `g = n − k − l` Reed-Solomon global parities.
///
/// Shard layout: data blocks first (`0..k`), then the local parities
/// (`k..k+l`, one per group in order), then the global parities.
///
/// # Examples
///
/// ```
/// use fusion_ec::lrc::LrcCodec;
///
/// let lrc = LrcCodec::new(10, 6, 2)?; // two groups of three data blocks
/// let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 256]).collect();
/// let parity = lrc.encode(&data);
/// assert_eq!(parity.len(), 4); // 2 local + 2 global
///
/// // A single lost data shard repairs from its local group alone.
/// let available = vec![true; 10];
/// let sources = lrc.repair_sources(0, &available).unwrap();
/// assert_eq!(sources, vec![1, 2, 6]); // group peers + local parity
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LrcCodec {
    n: usize,
    k: usize,
    /// Local groups (`l`); group `j` covers data columns
    /// `j*group_size .. (j+1)*group_size` plus local parity `k + j`.
    groups: usize,
    /// Global parities (`g = n − k − l`).
    globals: usize,
    /// Full `n × k` generator: identity, masked local rows, global rows.
    rows: Matrix,
    codec: Arc<dyn Codec>,
}

impl LrcCodec {
    /// Creates an `LRC(n, k, l)` code with the default GF(2^8) kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CodeParamsError`] for degenerate parameters.
    pub fn new(n: usize, k: usize, groups: usize) -> Result<LrcCodec, CodeParamsError> {
        LrcCodec::with_codec(n, k, groups, CodecKind::default())
    }

    /// Creates an `LRC(n, k, l)` code with an explicit GF(2^8) kernel.
    ///
    /// # Errors
    ///
    /// [`CodeParamsError::InvalidLocalGroups`] when `groups` is zero, does
    /// not divide `k`, or leaves no global parity (`n ≤ k + groups`);
    /// plus the usual RS parameter checks.
    pub fn with_codec(
        n: usize,
        k: usize,
        groups: usize,
        codec: CodecKind,
    ) -> Result<LrcCodec, CodeParamsError> {
        if k == 0 {
            return Err(CodeParamsError::ZeroDataBlocks);
        }
        if n <= k {
            return Err(CodeParamsError::NoParityBlocks);
        }
        if n > 256 {
            return Err(CodeParamsError::TooManyBlocks);
        }
        if groups == 0 || !k.is_multiple_of(groups) || n <= k + groups {
            return Err(CodeParamsError::InvalidLocalGroups);
        }
        let globals = n - k - groups;
        // Parity rows of the underlying (k + g + 1, k) MDS code: P0 is
        // split into the local parities, P1..=Pg are the globals.
        let base = Matrix::systematic_encode_matrix(k + globals + 1, k);
        let group_size = k / groups;
        let mut rows = Matrix::zero(n, k);
        for i in 0..k {
            rows.set(i, i, Gf256::ONE);
        }
        for j in 0..groups {
            for c in j * group_size..(j + 1) * group_size {
                rows.set(k + j, c, base.get(k, c));
            }
        }
        for p in 0..globals {
            for c in 0..k {
                rows.set(k + groups + p, c, base.get(k + 1 + p, c));
            }
        }
        Ok(LrcCodec {
            n,
            k,
            groups,
            globals,
            rows,
            codec: codec.build(),
        })
    }

    /// Which GF(2^8) kernel this instance multiplies with.
    pub fn codec_kind(&self) -> CodecKind {
        self.codec.kind()
    }

    /// Total blocks per stripe (`n`).
    pub fn total_blocks(&self) -> usize {
        self.n
    }

    /// Data blocks per stripe (`k`).
    pub fn data_blocks(&self) -> usize {
        self.k
    }

    /// Local groups (`l`).
    pub fn local_groups(&self) -> usize {
        self.groups
    }

    /// Global parities (`g`).
    pub fn global_parities(&self) -> usize {
        self.globals
    }

    /// Data blocks per local group (`k / l`).
    pub fn group_size(&self) -> usize {
        self.k / self.groups
    }

    /// Guaranteed simultaneous-loss tolerance: `g + 1` (any such mask is
    /// recoverable; verified exhaustively by tests).
    pub fn tolerance(&self) -> usize {
        self.globals + 1
    }

    /// The local group of a shard: data and local-parity shards belong to
    /// a group; global parities to none.
    pub fn group_of(&self, shard: usize) -> Option<usize> {
        if shard < self.k {
            Some(shard / self.group_size())
        } else if shard < self.k + self.groups {
            Some(shard - self.k)
        } else {
            None
        }
    }

    /// Shard indices of a local group: its data blocks plus its local
    /// parity.
    pub fn group_members(&self, group: usize) -> Vec<usize> {
        assert!(group < self.groups, "group out of range");
        let gs = self.group_size();
        let mut m: Vec<usize> = (group * gs..(group + 1) * gs).collect();
        m.push(self.k + group);
        m
    }

    /// Encodes `k` (possibly variable-length) data blocks into the `l +
    /// g` parity blocks, each as long as the longest data block (the same
    /// variable-width stripe semantics as [`crate::rs::ReedSolomon`]).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Vec<Vec<u8>> {
        let mut parity = Vec::new();
        self.encode_into(data, &mut parity);
        parity
    }

    /// Like [`LrcCodec::encode`], but writes the parity into
    /// caller-provided buffers so repeated stripes reuse allocations.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode_into<T: AsRef<[u8]>>(&self, data: &[T], parity: &mut Vec<Vec<u8>>) {
        assert_eq!(data.len(), self.k, "expected exactly k data blocks");
        let width = data.iter().map(|d| d.as_ref().len()).max().unwrap_or(0);
        let m = self.n - self.k;
        parity.truncate(m);
        parity.resize_with(m, Vec::new);
        for out in parity.iter_mut() {
            out.clear();
            out.resize(width, 0);
        }
        for (p, out) in parity.iter_mut().enumerate() {
            let row = self.rows.row(self.k + p);
            for (j, d) in data.iter().enumerate() {
                if !row[j].is_zero() {
                    self.codec.mul_acc(out, d.as_ref(), row[j]);
                }
            }
        }
    }

    /// Verifies that a full stripe (data, local parities, global
    /// parities, all implicitly zero-padded) is consistent with this code.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != n`.
    pub fn verify<T: AsRef<[u8]>>(&self, shards: &[T]) -> bool {
        assert_eq!(shards.len(), self.n, "expected n shards");
        let expected = self.encode(&shards[..self.k]);
        expected
            .iter()
            .zip(&shards[self.k..])
            .all(|(e, s)| pad_eq(e, s.as_ref()))
    }

    /// Recovers **all** missing shards in place, deciding recoverability
    /// by the rank of the surviving generator rows (the code is not MDS,
    /// so which shards survive matters, not just how many).
    ///
    /// # Errors
    ///
    /// [`ReconstructError::TooFewBlocks`] below `k` survivors,
    /// [`ReconstructError::NotRecoverable`] when the survivors do not
    /// span the erased blocks, plus the usual shape checks.
    pub fn reconstruct(
        &self,
        shards: &mut [Option<Vec<u8>>],
        width: usize,
    ) -> Result<(), ReconstructError> {
        self.check_shape(shards, width)?;
        let missing: Vec<usize> = (0..self.n).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        let present = self.n - missing.len();
        if present < self.k {
            return Err(ReconstructError::TooFewBlocks {
                present,
                required: self.k,
            });
        }
        let data_targets: Vec<usize> = missing.iter().copied().filter(|&i| i < self.k).collect();
        self.solve_data(shards, width, &data_targets)?;
        for &p in missing.iter().filter(|&&i| i >= self.k) {
            self.recompute_parity(shards, width, p);
        }
        Ok(())
    }

    /// Repairs exactly one lost shard in place from whatever subset of
    /// shards is present — the entry point of the *local repair* path:
    /// hand it just the shard's group members and it solves within the
    /// group, never touching the rest of the stripe.
    ///
    /// # Errors
    ///
    /// [`ReconstructError::NotRecoverable`] when the present shards do
    /// not determine `lost`, plus the usual shape checks.
    pub fn repair_one(
        &self,
        shards: &mut [Option<Vec<u8>>],
        lost: usize,
        width: usize,
    ) -> Result<(), ReconstructError> {
        self.check_shape(shards, width)?;
        assert!(lost < self.n, "shard index out of range");
        if shards[lost].is_some() {
            return Ok(());
        }
        if lost < self.k {
            return self.solve_data(shards, width, &[lost]);
        }
        // Parity: recover whatever of its data support is missing, then
        // re-encode the row.
        let support: Vec<usize> = (0..self.k)
            .filter(|&c| !self.rows.get(lost, c).is_zero() && shards[c].is_none())
            .collect();
        self.solve_data(shards, width, &support)?;
        self.recompute_parity(shards, width, lost);
        Ok(())
    }

    /// The cheapest shard set that rebuilds `lost` given which shards are
    /// currently `available`: the shard's local group when it is intact
    /// (`k/l` reads instead of `k`), the data blocks for a global parity,
    /// or a rank-spanning survivor set as the multi-failure fallback.
    /// `None` when the loss is unrecoverable.
    ///
    /// # Panics
    ///
    /// Panics if `available.len() != n`.
    pub fn repair_sources(&self, lost: usize, available: &[bool]) -> Option<Vec<usize>> {
        assert_eq!(available.len(), self.n, "expected n availability flags");
        if let Some(g) = self.group_of(lost) {
            let family: Vec<usize> = self
                .group_members(g)
                .into_iter()
                .filter(|&i| i != lost)
                .collect();
            if family.iter().all(|&i| available[i]) {
                return Some(family);
            }
        } else if (0..self.k).all(|c| available[c]) {
            // Global parity with all data intact: re-encode from data.
            return Some((0..self.k).collect());
        }
        // Fallback: greedily collect survivor rows until they span the
        // full data space (rank k), preferring data shards whose rows are
        // unit vectors. Coefficient-only elimination — no byte work.
        let mut basis: Vec<Vec<Gf256>> = Vec::with_capacity(self.k);
        let mut pivots: Vec<usize> = Vec::with_capacity(self.k);
        let mut picked = Vec::with_capacity(self.k);
        for i in (0..self.n).filter(|&i| available[i] && i != lost) {
            let mut row: Vec<Gf256> = self.rows.row(i).to_vec();
            for (b, &p) in basis.iter().zip(&pivots) {
                let f = row[p];
                if !f.is_zero() {
                    for (rc, bc) in row.iter_mut().zip(b) {
                        *rc += f * *bc;
                    }
                }
            }
            let Some(p) = row.iter().position(|c| !c.is_zero()) else {
                continue; // dependent on already-picked rows
            };
            let inv = row[p].inverse();
            for c in row.iter_mut() {
                *c *= inv;
            }
            basis.push(row);
            pivots.push(p);
            picked.push(i);
            if picked.len() == self.k {
                return Some(picked);
            }
        }
        None
    }

    fn check_shape(
        &self,
        shards: &[Option<Vec<u8>>],
        width: usize,
    ) -> Result<(), ReconstructError> {
        if shards.len() != self.n {
            return Err(ReconstructError::WrongShardCount {
                got: shards.len(),
                expected: self.n,
            });
        }
        if shards
            .iter()
            .any(|s| s.as_ref().is_some_and(|s| s.len() > width))
        {
            return Err(ReconstructError::ShardTooLong);
        }
        Ok(())
    }

    /// Solves for the data shards in `targets` by Gauss-Jordan
    /// elimination over the generator rows of every present shard,
    /// applying the same row operations to the shard bytes. A target is
    /// recovered iff its column ends up with a pivot row that is a unit
    /// vector (pure — no dependence on other unknowns).
    fn solve_data(
        &self,
        shards: &mut [Option<Vec<u8>>],
        width: usize,
        targets: &[usize],
    ) -> Result<(), ReconstructError> {
        if targets.is_empty() {
            return Ok(());
        }
        // (coefficients over the k data columns, zero-padded bytes)
        let mut coeff: Vec<Vec<Gf256>> = Vec::new();
        let mut bytes: Vec<Vec<u8>> = Vec::new();
        let mut pivot_of: Vec<Option<usize>> = vec![None; self.k];
        for (i, shard) in shards.iter().enumerate() {
            let Some(s) = shard else { continue };
            let mut row: Vec<Gf256> = self.rows.row(i).to_vec();
            let mut buf = s.clone();
            buf.resize(width, 0);
            // Reduce against existing pivots.
            for c in 0..self.k {
                if row[c].is_zero() {
                    continue;
                }
                let Some(p) = pivot_of[c] else { continue };
                let f = row[c];
                for (rc, pc) in row.iter_mut().zip(&coeff[p]) {
                    *rc += f * *pc;
                }
                self.codec.mul_acc(&mut buf, &bytes[p], f);
            }
            let Some(lead) = row.iter().position(|c| !c.is_zero()) else {
                continue; // linearly dependent row
            };
            let inv = row[lead].inverse();
            if inv != Gf256::ONE {
                for c in row.iter_mut() {
                    *c *= inv;
                }
                self.codec.mul_slice(&mut buf, inv);
            }
            // Back-eliminate the new pivot column from earlier rows.
            // `row`/`buf` are still locals, so no split borrows needed.
            let new_idx = coeff.len();
            for p in 0..new_idx {
                let f = coeff[p][lead];
                if f.is_zero() {
                    continue;
                }
                for (uc, nc) in coeff[p].iter_mut().zip(&row) {
                    *uc += f * *nc;
                }
                self.codec.mul_acc(&mut bytes[p], &buf, f);
            }
            pivot_of[lead] = Some(new_idx);
            coeff.push(row);
            bytes.push(buf);
            if pivot_of.iter().filter(|p| p.is_some()).count() == self.k {
                break;
            }
        }
        for &t in targets {
            let Some(p) = pivot_of[t] else {
                return Err(ReconstructError::NotRecoverable);
            };
            // Pure pivot: a unit vector at column t.
            let pure =
                coeff[p]
                    .iter()
                    .enumerate()
                    .all(|(c, &v)| if c == t { v == Gf256::ONE } else { v.is_zero() });
            if !pure {
                return Err(ReconstructError::NotRecoverable);
            }
            shards[t] = Some(bytes[p].clone());
        }
        Ok(())
    }

    /// Re-encodes parity shard `p` from its (present) data support.
    fn recompute_parity(&self, shards: &mut [Option<Vec<u8>>], width: usize, p: usize) {
        let row = self.rows.row(p).to_vec();
        let mut out = vec![0u8; width];
        for (c, &f) in row.iter().enumerate() {
            if f.is_zero() {
                continue;
            }
            let d = shards[c].as_ref().expect("support data present");
            self.codec.mul_acc(&mut out[..d.len().min(width)], d, f);
        }
        shards[p] = Some(out);
    }
}

impl std::fmt::Display for LrcCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LRC({}, {}, {})", self.n, self.k, self.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, width: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..width)
                    .map(|j| ((i * 131 + j * 7 + 13) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    fn full_stripe(lrc: &LrcCodec, width: usize) -> Vec<Vec<u8>> {
        let mut data = sample_data(lrc.data_blocks(), width);
        let parity = lrc.encode(&data);
        data.extend(parity);
        data
    }

    /// Visits every mask of exactly `t` losses out of `n`.
    fn for_each_mask(n: usize, t: usize, f: &mut dyn FnMut(&[usize])) {
        fn rec(
            start: usize,
            n: usize,
            left: usize,
            cur: &mut Vec<usize>,
            f: &mut dyn FnMut(&[usize]),
        ) {
            if left == 0 {
                f(cur);
                return;
            }
            for i in start..=n - left {
                cur.push(i);
                rec(i + 1, n, left - 1, cur, f);
                cur.pop();
            }
        }
        rec(0, n, t, &mut Vec::new(), f);
    }

    #[test]
    fn rejects_bad_group_counts() {
        // groups must divide k
        assert_eq!(
            LrcCodec::new(10, 6, 4).unwrap_err(),
            CodeParamsError::InvalidLocalGroups
        );
        // zero groups
        assert_eq!(
            LrcCodec::new(10, 6, 0).unwrap_err(),
            CodeParamsError::InvalidLocalGroups
        );
        // no room for a global parity: n == k + l
        assert_eq!(
            LrcCodec::new(8, 6, 2).unwrap_err(),
            CodeParamsError::InvalidLocalGroups
        );
        assert_eq!(
            LrcCodec::new(6, 0, 1).unwrap_err(),
            CodeParamsError::ZeroDataBlocks
        );
        assert_eq!(
            LrcCodec::new(6, 6, 2).unwrap_err(),
            CodeParamsError::NoParityBlocks
        );
    }

    #[test]
    fn shape_and_groups() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        assert_eq!(lrc.total_blocks(), 10);
        assert_eq!(lrc.data_blocks(), 6);
        assert_eq!(lrc.local_groups(), 2);
        assert_eq!(lrc.global_parities(), 2);
        assert_eq!(lrc.group_size(), 3);
        assert_eq!(lrc.tolerance(), 3);
        assert_eq!(lrc.to_string(), "LRC(10, 6, 2)");
        // Data shards 0..2 and local parity 6 form group 0.
        assert_eq!(lrc.group_of(0), Some(0));
        assert_eq!(lrc.group_of(2), Some(0));
        assert_eq!(lrc.group_of(3), Some(1));
        assert_eq!(lrc.group_of(6), Some(0));
        assert_eq!(lrc.group_of(7), Some(1));
        assert_eq!(lrc.group_of(8), None);
        assert_eq!(lrc.group_of(9), None);
        assert_eq!(lrc.group_members(0), vec![0, 1, 2, 6]);
        assert_eq!(lrc.group_members(1), vec![3, 4, 5, 7]);
    }

    #[test]
    fn encode_verify_roundtrip() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let stripe = full_stripe(&lrc, 257);
        assert!(lrc.verify(&stripe));
        let mut bad = stripe.clone();
        bad[7][3] ^= 0x40;
        assert!(!lrc.verify(&bad));
    }

    #[test]
    fn local_parity_depends_only_on_its_group() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let width = 64;
        let a = sample_data(6, width);
        let mut b = a.clone();
        // Perturb a group-1 data block: group-0's local parity must not move.
        b[4][10] ^= 0xFF;
        let pa = lrc.encode(&a);
        let pb = lrc.encode(&b);
        assert_eq!(pa[0], pb[0], "L0 must ignore group-1 data");
        assert_ne!(pa[1], pb[1], "L1 must cover group-1 data");
    }

    /// The headline guarantee: every mask of up to `g + 1 = 3` losses is
    /// recoverable for LRC(10, 6, 2). Exhaustive over all C(10,1) +
    /// C(10,2) + C(10,3) = 175 masks.
    #[test]
    fn all_masks_within_tolerance_recover() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let width = 96;
        let stripe = full_stripe(&lrc, width);
        for t in 1..=lrc.tolerance() {
            for_each_mask(10, t, &mut |mask| {
                let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
                for &i in mask {
                    shards[i] = None;
                }
                lrc.reconstruct(&mut shards, width)
                    .unwrap_or_else(|e| panic!("mask {mask:?} failed: {e}"));
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(
                        s.as_deref(),
                        Some(&stripe[i][..]),
                        "shard {i}, mask {mask:?}"
                    );
                }
            });
        }
    }

    #[test]
    fn larger_code_masks_recover() {
        // LRC(14, 10, 2): tolerance 3, exhaustive over all 3-masks.
        let lrc = LrcCodec::new(14, 10, 2).unwrap();
        let width = 40;
        let stripe = full_stripe(&lrc, width);
        for_each_mask(14, 3, &mut |mask| {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            for &i in mask {
                shards[i] = None;
            }
            lrc.reconstruct(&mut shards, width)
                .unwrap_or_else(|e| panic!("mask {mask:?} failed: {e}"));
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(
                    s.as_deref(),
                    Some(&stripe[i][..]),
                    "shard {i}, mask {mask:?}"
                );
            }
        });
    }

    #[test]
    fn repair_sources_prefers_local_group() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let all = vec![true; 10];
        // Data shard: its group peers + local parity, 3 reads instead of 6.
        assert_eq!(lrc.repair_sources(1, &all), Some(vec![0, 2, 6]));
        assert_eq!(lrc.repair_sources(4, &all), Some(vec![3, 5, 7]));
        // Local parity: its group's data.
        assert_eq!(lrc.repair_sources(6, &all), Some(vec![0, 1, 2]));
        // Global parity: all data.
        assert_eq!(lrc.repair_sources(8, &all), Some(vec![0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn repair_sources_falls_back_when_group_broken() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let mut avail = vec![true; 10];
        avail[0] = false;
        avail[6] = false; // group 0 lost a peer and its local parity
        let sources = lrc.repair_sources(1, &avail).expect("still recoverable");
        assert!(
            sources.len() >= lrc.data_blocks(),
            "fallback is global: {sources:?}"
        );
        // And the sources actually suffice for repair_one.
        let width = 32;
        let stripe = full_stripe(&lrc, width);
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; 10];
        for &s in &sources {
            shards[s] = Some(stripe[s].clone());
        }
        lrc.repair_one(&mut shards, 1, width).unwrap();
        assert_eq!(shards[1].as_deref(), Some(&stripe[1][..]));
    }

    #[test]
    fn repair_sources_none_when_unrecoverable() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        // Lose all of group 0's data and both globals: rank < k.
        let mut avail = vec![true; 10];
        for i in [0, 1, 2, 8, 9] {
            avail[i] = false;
        }
        assert_eq!(lrc.repair_sources(0, &avail), None);
    }

    #[test]
    fn repair_one_from_exact_local_sources() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let width = 128;
        let stripe = full_stripe(&lrc, width);
        for lost in 0..10 {
            let avail: Vec<bool> = (0..10).map(|i| i != lost).collect();
            let sources = lrc.repair_sources(lost, &avail).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = vec![None; 10];
            for &s in &sources {
                shards[s] = Some(stripe[s].clone());
            }
            lrc.repair_one(&mut shards, lost, width).unwrap();
            assert_eq!(
                shards[lost].as_deref(),
                Some(&stripe[lost][..]),
                "lost {lost} via {sources:?}"
            );
        }
    }

    #[test]
    fn variable_width_blocks_roundtrip() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 + 1; 10 + i * 17]).collect();
        let width = data.iter().map(Vec::len).max().unwrap();
        let parity = lrc.encode(&data);
        assert!(parity.iter().all(|p| p.len() == width));
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        shards[2] = None;
        shards[9] = None;
        lrc.reconstruct(&mut shards, width).unwrap();
        // Recovered data comes back zero-padded to the stripe width.
        let got = shards[2].as_deref().unwrap();
        assert_eq!(&got[..data[2].len()], &data[2][..]);
        assert!(got[data[2].len()..].iter().all(|&b| b == 0));
        assert_eq!(shards[9].as_deref(), Some(&parity[3][..]));
    }

    #[test]
    fn unrecoverable_mask_reports_not_recoverable() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let width = 16;
        let stripe = full_stripe(&lrc, width);
        // Four losses concentrated on group 0 data + both globals leave
        // six survivors (count == k) that do not span the stripe.
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        for i in [0, 1, 8, 9] {
            shards[i] = None;
        }
        assert_eq!(
            lrc.reconstruct(&mut shards, width),
            Err(ReconstructError::NotRecoverable)
        );
    }

    #[test]
    fn too_few_blocks_detected() {
        let lrc = LrcCodec::new(10, 6, 2).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; 10];
        for s in shards.iter_mut().take(5) {
            *s = Some(vec![0u8; 8]);
        }
        assert_eq!(
            lrc.reconstruct(&mut shards, 8),
            Err(ReconstructError::TooFewBlocks {
                present: 5,
                required: 6
            })
        );
    }

    #[test]
    fn scalar_and_fast_codecs_agree() {
        let fast = LrcCodec::with_codec(10, 6, 2, CodecKind::Fast).unwrap();
        let scalar = LrcCodec::with_codec(10, 6, 2, CodecKind::Scalar).unwrap();
        let data = sample_data(6, 333);
        assert_eq!(fast.encode(&data), scalar.encode(&data));
        assert_eq!(fast.codec_kind(), CodecKind::Fast);
        assert_eq!(scalar.codec_kind(), CodecKind::Scalar);
    }
}
