#![warn(missing_docs)]

//! # fusion-ec
//!
//! Systematic Reed-Solomon erasure coding over GF(2^8), written from
//! scratch for the Fusion analytics object store (ASPLOS '25).
//!
//! Two properties distinguish this implementation from a generic RS
//! library, both required by Fusion's file-format-aware coding (FAC):
//!
//! 1. **Variable-length data blocks per stripe.** [`rs::ReedSolomon::encode`]
//!    accepts `k` blocks of different sizes; parity blocks take the size of
//!    the largest data block, and shorter blocks are treated as implicitly
//!    zero-padded (the padding is never stored). This is exactly the stripe
//!    model of the paper's Figure 2.
//! 2. **Systematic layout.** Data blocks are stored in plaintext, which is
//!    what makes in-situ computation pushdown on storage nodes possible.
//!
//! The GF(2^8) inner loop is pluggable ([`codec::CodecKind`]): the default
//! [`codec::FastCodec`] multiplies through split-nibble tables with SIMD
//! byte-shuffle kernels ([`kernel`]), while [`codec::ScalarCodec`] keeps
//! the original log/exp path as a differential-testing reference. Stripe
//! fan-out for callers lives in [`pool::WorkerPool`].
//!
//! ## Quickstart
//!
//! ```
//! use fusion_ec::rs::ReedSolomon;
//!
//! let rs = ReedSolomon::new(9, 6)?;                     // the paper's default code
//! let blocks: Vec<Vec<u8>> = (0..6).map(|i| vec![i; 1024]).collect();
//! let parity = rs.encode(&blocks);
//!
//! let mut stripe: Vec<Option<Vec<u8>>> =
//!     blocks.into_iter().map(Some).chain(parity.into_iter().map(Some)).collect();
//! stripe[2] = None;                                     // lose a node
//! rs.reconstruct(&mut stripe, 1024)?;                   // bring it back
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codec;
pub mod gf;
pub mod kernel;
pub mod lrc;
pub mod matrix;
pub mod pool;
pub mod rs;
pub mod stripe;

pub use codec::{Codec, CodecKind, FastCodec, ScalarCodec};
pub use gf::Gf256;
pub use lrc::LrcCodec;
pub use matrix::Matrix;
pub use pool::WorkerPool;
pub use rs::{CodeParamsError, ReconstructError, ReedSolomon};
pub use stripe::StripeCodec;
