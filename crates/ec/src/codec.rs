//! Pluggable GF(2^8) bulk-multiplication codecs.
//!
//! The Reed-Solomon inner loop is `acc[i] ^= c · data[i]` over whole
//! shards. Two implementations are provided:
//!
//! * [`ScalarCodec`] — the original log/exp path ([`crate::gf`]), kept as
//!   the reference implementation for differential testing.
//! * [`FastCodec`] — split-nibble kernels ([`crate::kernel`]) with all 256
//!   coefficient tables precomputed at construction. The full cache is
//!   8 KiB (256 × 32 B), stays L1-resident, and is shared by every encode
//!   row and every reconstruct inverse-matrix row of a
//!   [`crate::rs::ReedSolomon`] instance — tables are never rebuilt on the
//!   hot path.
//!
//! Both codecs implement identical semantics: the accumulate variant
//! touches only the common prefix of `acc` and `data` (the implicit
//! zero-padding rule for variable-length stripes).

use std::sync::Arc;

use crate::gf::{self, Gf256};
use crate::kernel::{xor_acc, NibbleTable};

/// Which codec implementation a [`crate::rs::ReedSolomon`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// Log/exp scalar reference path.
    Scalar,
    /// Split-nibble kernels with a per-instance coefficient table cache.
    #[default]
    Fast,
}

impl CodecKind {
    /// Stable lowercase name, used in bench labels and result files.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Scalar => "scalar",
            CodecKind::Fast => "fast",
        }
    }

    /// Instantiates the codec.
    pub fn build(self) -> Arc<dyn Codec> {
        match self {
            CodecKind::Scalar => Arc::new(ScalarCodec),
            CodecKind::Fast => Arc::new(FastCodec::new()),
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Bulk GF(2^8) multiply-accumulate over byte slices.
///
/// Implementations must be `Send + Sync`: one codec instance is shared
/// across the worker threads that encode stripes in parallel.
pub trait Codec: std::fmt::Debug + Send + Sync {
    /// Which [`CodecKind`] this codec implements.
    fn kind(&self) -> CodecKind;

    /// `acc[i] ^= c · data[i]` over the common prefix of the slices; any
    /// tail of the longer slice is left untouched.
    fn mul_acc(&self, acc: &mut [u8], data: &[u8], c: Gf256);

    /// `data[i] = c · data[i]` in place.
    fn mul_slice(&self, data: &mut [u8], c: Gf256);
}

/// Reference codec: per-call 256-entry product table, one lookup per byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarCodec;

impl Codec for ScalarCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Scalar
    }

    fn mul_acc(&self, acc: &mut [u8], data: &[u8], c: Gf256) {
        let n = acc.len().min(data.len());
        gf::mul_acc(&mut acc[..n], &data[..n], c);
    }

    fn mul_slice(&self, data: &mut [u8], c: Gf256) {
        gf::mul_slice(data, c);
    }
}

/// Optimized codec: split-nibble SIMD/block kernels, every coefficient's
/// table pair built once at construction.
#[derive(Clone)]
pub struct FastCodec {
    /// `tables[c]` = split-nibble tables for coefficient `c`. Boxed so the
    /// codec itself stays pointer-sized inside `Arc<dyn Codec>` clones.
    tables: Box<[NibbleTable; 256]>,
}

impl FastCodec {
    /// Builds all 256 coefficient tables (8 KiB total).
    pub fn new() -> FastCodec {
        let tables: Vec<NibbleTable> = (0..=255u8).map(|c| NibbleTable::new(Gf256(c))).collect();
        FastCodec {
            tables: tables.try_into().expect("exactly 256 coefficient tables"),
        }
    }

    /// The cached table pair for coefficient `c`.
    #[inline]
    pub fn table(&self, c: Gf256) -> &NibbleTable {
        &self.tables[c.value() as usize]
    }
}

impl Default for FastCodec {
    fn default() -> FastCodec {
        FastCodec::new()
    }
}

impl std::fmt::Debug for FastCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // 256 tables of raw bytes are noise; identify the codec only.
        f.debug_struct("FastCodec").finish_non_exhaustive()
    }
}

impl Codec for FastCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Fast
    }

    fn mul_acc(&self, acc: &mut [u8], data: &[u8], c: Gf256) {
        if c.is_zero() {
            return;
        }
        if c == Gf256::ONE {
            xor_acc(acc, data);
            return;
        }
        self.table(c).mul_acc(acc, data);
    }

    fn mul_slice(&self, data: &mut [u8], c: Gf256) {
        if c == Gf256::ONE {
            return;
        }
        if c.is_zero() {
            data.fill(0);
            return;
        }
        self.table(c).mul_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(113).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn kinds_and_names() {
        assert_eq!(CodecKind::default(), CodecKind::Fast);
        assert_eq!(CodecKind::Scalar.name(), "scalar");
        assert_eq!(CodecKind::Fast.to_string(), "fast");
        assert_eq!(CodecKind::Scalar.build().kind(), CodecKind::Scalar);
        assert_eq!(CodecKind::Fast.build().kind(), CodecKind::Fast);
    }

    #[test]
    fn codecs_agree_on_mul_acc() {
        let fast = FastCodec::new();
        let scalar = ScalarCodec;
        for c in 0..=255u8 {
            for &len in &[0usize, 1, 7, 8, 9, 40, 65] {
                let data = pattern(len, c);
                let mut a = pattern(len, 0x3C);
                let mut b = a.clone();
                fast.mul_acc(&mut a, &data, Gf256(c));
                scalar.mul_acc(&mut b, &data, Gf256(c));
                assert_eq!(a, b, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn codecs_agree_on_mul_slice() {
        let fast = FastCodec::new();
        let scalar = ScalarCodec;
        for c in 0..=255u8 {
            let mut a = pattern(77, 5);
            let mut b = a.clone();
            fast.mul_slice(&mut a, Gf256(c));
            scalar.mul_slice(&mut b, Gf256(c));
            assert_eq!(a, b, "c={c}");
        }
    }

    #[test]
    fn mul_acc_respects_length_mismatch() {
        // acc longer than data: tail untouched. data longer: extra ignored.
        let fast = FastCodec::new();
        let mut acc = vec![0xEEu8; 10];
        fast.mul_acc(&mut acc, &[1, 2, 3], Gf256(2));
        assert!(acc[3..].iter().all(|&b| b == 0xEE));
        let mut short = vec![0u8; 2];
        fast.mul_acc(&mut short, &[9, 9, 9, 9], Gf256(3));
        let mut expect = vec![0u8; 2];
        ScalarCodec.mul_acc(&mut expect, &[9, 9, 9, 9], Gf256(3));
        assert_eq!(short, expect);
    }
}
