//! Dense matrices over GF(2^8), sized for erasure-code dimensions
//! (n, k ≤ 256). Provides the construction and inversion routines needed to
//! build systematic encoding matrices and to recover erased blocks.

use crate::gf::Gf256;

/// A row-major dense matrix over GF(2^8).
///
/// # Examples
///
/// ```
/// use fusion_ec::matrix::Matrix;
///
/// let m = Matrix::identity(3);
/// assert_eq!(m.mul(&m), m);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

/// Error returned when a singular matrix is inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular and cannot be inverted")
    }
}

impl std::error::Error for SingularMatrixError {}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, Gf256::ONE);
        }
        m
    }

    /// Builds a matrix from a row-major byte grid.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or the grid is empty.
    pub fn from_rows(rows: &[&[u8]]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut m = Matrix::zero(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, Gf256::new(v));
            }
        }
        m
    }

    /// Builds the `rows`×`cols` Vandermonde matrix with `m[i][j] = i^j`
    /// evaluated in GF(2^8) (row index taken as a field element).
    ///
    /// Any `cols` rows of this matrix are linearly independent as long as
    /// the row indices are distinct, which is the property that makes it a
    /// suitable starting point for an MDS code.
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, Gf256::new(i as u8).pow(j));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Gf256 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Gf256) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Gf256] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix multiply");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get(l, j));
                }
            }
        }
        out
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "must select at least one row");
        let mut m = Matrix::zero(indices.len(), self.cols);
        for (out_r, &r) in indices.iter().enumerate() {
            assert!(r < self.rows, "row index out of range");
            for c in 0..self.cols {
                m.set(out_r, c, self.get(r, c));
            }
        }
        m
    }

    /// Returns the sub-matrix of the first `n` rows.
    pub fn top_rows(&self, n: usize) -> Matrix {
        self.select_rows(&(0..n).collect::<Vec<_>>())
    }

    /// Inverts a square matrix via Gauss-Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the matrix has no inverse.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn invert(&self) -> Result<Matrix, SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n)
                .find(|&r| !work.get(r, col).is_zero())
                .ok_or(SingularMatrixError)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale pivot row to 1.
            let p = work.get(col, col);
            let pinv = p.inverse();
            work.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = work.get(r, col);
                if f.is_zero() {
                    continue;
                }
                work.add_scaled_row(col, r, f);
                inv.add_scaled_row(col, r, f);
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let (va, vb) = (self.get(a, c), self.get(b, c));
            self.set(a, c, vb);
            self.set(b, c, va);
        }
    }

    fn scale_row(&mut self, r: usize, f: Gf256) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, v * f);
        }
    }

    /// `row[dst] += f * row[src]`
    fn add_scaled_row(&mut self, src: usize, dst: usize, f: Gf256) {
        for c in 0..self.cols {
            let v = self.get(dst, c) + f * self.get(src, c);
            self.set(dst, c, v);
        }
    }

    /// Builds the systematic encoding matrix for an `(n, k)` MDS code: the
    /// top `k`×`k` block is the identity and every `k`×`k` sub-matrix of the
    /// full `n`×`k` matrix is invertible.
    ///
    /// Construction: take the `n`×`k` Vandermonde matrix `V`, then compute
    /// `V × V_top⁻¹` where `V_top` is its first `k` rows. Row operations of
    /// this form preserve the MDS property and make the top block identity,
    /// so data blocks are stored in plaintext (systematic code).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `n <= k`, or `n > 256`.
    pub fn systematic_encode_matrix(n: usize, k: usize) -> Matrix {
        assert!(k > 0, "k must be positive");
        assert!(n > k, "n must exceed k");
        assert!(n <= 256, "GF(256) codes support at most 256 total blocks");
        let v = Matrix::vandermonde(n, k);
        let top = v.top_rows(k);
        let top_inv = top
            .invert()
            .expect("Vandermonde top block is always invertible");
        v.mul(&top_inv)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c).value())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mul_is_noop() {
        let m = Matrix::from_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let i = Matrix::identity(3);
        assert_eq!(i.mul(&m), m);
        assert_eq!(m.mul(&i), m);
    }

    #[test]
    fn invert_identity() {
        let i = Matrix::identity(5);
        assert_eq!(i.invert().unwrap(), i);
    }

    #[test]
    fn invert_roundtrip() {
        let m = Matrix::from_rows(&[&[56, 23, 98], &[3, 100, 200], &[45, 201, 123]]);
        let inv = m.invert().unwrap();
        assert_eq!(m.mul(&inv), Matrix::identity(3));
        assert_eq!(inv.mul(&m), Matrix::identity(3));
    }

    #[test]
    fn singular_detected() {
        let m = Matrix::from_rows(&[&[1, 2], &[1, 2]]);
        assert_eq!(m.invert(), Err(SingularMatrixError));
        let z = Matrix::zero(2, 2);
        assert!(z.invert().is_err());
    }

    #[test]
    fn vandermonde_shape() {
        let v = Matrix::vandermonde(4, 3);
        // Row i is [1, i, i^2].
        for i in 0..4u8 {
            assert_eq!(v.get(i as usize, 0), Gf256::ONE);
            assert_eq!(v.get(i as usize, 1), Gf256::new(i));
            assert_eq!(v.get(i as usize, 2), Gf256::new(i) * Gf256::new(i));
        }
    }

    #[test]
    fn systematic_matrix_top_is_identity() {
        for (n, k) in [(9, 6), (14, 10), (3, 2), (6, 4)] {
            let m = Matrix::systematic_encode_matrix(n, k);
            assert_eq!(m.top_rows(k), Matrix::identity(k), "({n},{k})");
        }
    }

    #[test]
    fn systematic_matrix_is_mds() {
        // Every k-subset of rows must be invertible. Exhaustive for (6,4).
        let (n, k) = (6usize, 4usize);
        let m = Matrix::systematic_encode_matrix(n, k);
        let mut combo = vec![];
        fn rec(start: usize, n: usize, k: usize, combo: &mut Vec<usize>, m: &Matrix) {
            if combo.len() == k {
                assert!(
                    m.select_rows(combo).invert().is_ok(),
                    "rows {combo:?} are singular; code is not MDS"
                );
                return;
            }
            for i in start..n {
                combo.push(i);
                rec(i + 1, n, k, combo, m);
                combo.pop();
            }
        }
        rec(0, n, k, &mut combo, &m);
    }

    #[test]
    fn select_rows_orders() {
        let m = Matrix::from_rows(&[&[1], &[2], &[3]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.get(0, 0), Gf256::new(3));
        assert_eq!(s.get(1, 0), Gf256::new(1));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_dimension_mismatch_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Matrix::identity(2).to_string().is_empty());
    }
}
