//! Split-nibble GF(2^8) multiplication kernels.
//!
//! The scalar reference path ([`crate::gf::mul_acc`]) multiplies through a
//! 256-entry product table built per call — one dependent load per byte.
//! The kernels here use the ISA-L table layout instead: each coefficient
//! `c` gets **two 16-entry tables**, one holding `c · low_nibble` products
//! and one holding `c · (high_nibble << 4)` products, so that
//!
//! ```text
//! c · b  =  lo[b & 0x0F]  ^  hi[b >> 4]
//! ```
//!
//! The 16-entry tables fit in a single SIMD register, which turns the
//! per-byte table lookup into a 32-lane byte shuffle on AVX2 (16-lane on
//! SSSE3). The portable fallback processes 8-byte blocks with unrolled
//! lookups and a single 64-bit XOR accumulation per block.
//!
//! Kernels are verified byte-for-byte against the log/exp scalar path for
//! all 256×256 (coefficient, byte) pairs and for unaligned tails — see the
//! tests below and `tests/codec_diff.rs`.

use crate::gf::Gf256;

/// Split-nibble product tables for one fixed coefficient.
///
/// 32 bytes per coefficient; building one costs 32 field
/// multiplications, amortized over entire shards by the codec layer
/// ([`crate::codec::FastCodec`] caches all 256 of them — 8 KiB, L1-resident).
#[derive(Debug, Clone, Copy)]
pub struct NibbleTable {
    /// `lo[i] = c · i` for `i` in `0..16`.
    lo: [u8; 16],
    /// `hi[i] = c · (i << 4)` for `i` in `0..16`.
    hi: [u8; 16],
}

impl NibbleTable {
    /// Builds the two 16-entry tables for coefficient `c`.
    pub fn new(c: Gf256) -> NibbleTable {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for i in 0..16u8 {
            lo[i as usize] = (c * Gf256(i)).value();
            hi[i as usize] = (c * Gf256(i << 4)).value();
        }
        NibbleTable { lo, hi }
    }

    /// Multiplies a single byte by the table's coefficient.
    #[inline(always)]
    pub fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }

    /// `acc[i] ^= c · data[i]` over the common prefix of the two slices
    /// (the tail of the longer slice is untouched, matching the implicit
    /// zero-padding semantics of variable-length stripes).
    pub fn mul_acc(&self, acc: &mut [u8], data: &[u8]) {
        let n = acc.len().min(data.len());
        let (acc, data) = (&mut acc[..n], &data[..n]);
        #[cfg(target_arch = "x86_64")]
        if n >= 32 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { self.mul_acc_avx2(acc, data) };
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if n >= 16 && std::arch::is_x86_feature_detected!("ssse3") {
            // SAFETY: SSSE3 support was just verified at runtime.
            unsafe { self.mul_acc_ssse3(acc, data) };
            return;
        }
        self.mul_acc_blocks(acc, data);
    }

    /// `data[i] = c · data[i]` in place.
    pub fn mul_slice(&self, data: &mut [u8]) {
        #[cfg(target_arch = "x86_64")]
        if data.len() >= 32 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { self.mul_slice_avx2(data) };
            return;
        }
        self.mul_slice_blocks(data);
    }

    /// Portable kernel: 8-byte blocks, unrolled lookups, one 64-bit XOR
    /// store per block. Slices must be equal length.
    fn mul_acc_blocks(&self, acc: &mut [u8], data: &[u8]) {
        debug_assert_eq!(acc.len(), data.len());
        let mut ac = acc.chunks_exact_mut(8);
        let mut dc = data.chunks_exact(8);
        for (a, d) in ac.by_ref().zip(dc.by_ref()) {
            let prod = [
                self.mul(d[0]),
                self.mul(d[1]),
                self.mul(d[2]),
                self.mul(d[3]),
                self.mul(d[4]),
                self.mul(d[5]),
                self.mul(d[6]),
                self.mul(d[7]),
            ];
            let a8: &mut [u8; 8] = a.try_into().expect("exact 8-byte chunk");
            let x = u64::from_ne_bytes(*a8) ^ u64::from_ne_bytes(prod);
            *a8 = x.to_ne_bytes();
        }
        for (a, d) in ac.into_remainder().iter_mut().zip(dc.remainder()) {
            *a ^= self.mul(*d);
        }
    }

    /// Portable in-place kernel, same 8-byte block structure.
    fn mul_slice_blocks(&self, data: &mut [u8]) {
        let mut dc = data.chunks_exact_mut(8);
        for d in dc.by_ref() {
            let prod = [
                self.mul(d[0]),
                self.mul(d[1]),
                self.mul(d[2]),
                self.mul(d[3]),
                self.mul(d[4]),
                self.mul(d[5]),
                self.mul(d[6]),
                self.mul(d[7]),
            ];
            d.copy_from_slice(&prod);
        }
        for d in dc.into_remainder() {
            *d = self.mul(*d);
        }
    }

    /// AVX2 kernel: 32 bytes per iteration via two `vpshufb` lookups.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `acc.len() == data.len()`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_avx2(&self, acc: &mut [u8], data: &[u8]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(acc.len(), data.len());
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(self.lo.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(self.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = acc.len();
        let mut i = 0;
        while i + 32 <= n {
            let d = _mm256_loadu_si256(data.as_ptr().add(i) as *const __m256i);
            let a = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            // Per-byte `>> 4` = 64-bit shift then byte mask (shifted-in
            // neighbor bits are cleared by the mask).
            let dl = _mm256_and_si256(d, mask);
            let dh = _mm256_and_si256(_mm256_srli_epi64::<4>(d), mask);
            let p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, dl), _mm256_shuffle_epi8(hi, dh));
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(a, p),
            );
            i += 32;
        }
        self.mul_acc_blocks(&mut acc[i..], &data[i..]);
    }

    /// SSSE3 kernel: 16 bytes per iteration via two `pshufb` lookups.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSSE3 is available and `acc.len() == data.len()`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_acc_ssse3(&self, acc: &mut [u8], data: &[u8]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(acc.len(), data.len());
        let lo = _mm_loadu_si128(self.lo.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(self.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = acc.len();
        let mut i = 0;
        while i + 16 <= n {
            let d = _mm_loadu_si128(data.as_ptr().add(i) as *const __m128i);
            let a = _mm_loadu_si128(acc.as_ptr().add(i) as *const __m128i);
            let dl = _mm_and_si128(d, mask);
            let dh = _mm_and_si128(_mm_srli_epi64::<4>(d), mask);
            let p = _mm_xor_si128(_mm_shuffle_epi8(lo, dl), _mm_shuffle_epi8(hi, dh));
            _mm_storeu_si128(acc.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(a, p));
            i += 16;
        }
        self.mul_acc_blocks(&mut acc[i..], &data[i..]);
    }

    /// AVX2 in-place kernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_slice_avx2(&self, data: &mut [u8]) {
        use std::arch::x86_64::*;
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(self.lo.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(self.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = data.len();
        let mut i = 0;
        while i + 32 <= n {
            let d = _mm256_loadu_si256(data.as_ptr().add(i) as *const __m256i);
            let dl = _mm256_and_si256(d, mask);
            let dh = _mm256_and_si256(_mm256_srli_epi64::<4>(d), mask);
            let p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, dl), _mm256_shuffle_epi8(hi, dh));
            _mm256_storeu_si256(data.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        self.mul_slice_blocks(&mut data[i..]);
    }
}

/// `acc[i] ^= data[i]` over the common prefix — the coefficient-one fast
/// path. Processes 8-byte blocks with 64-bit XORs; the compiler
/// autovectorizes this shape well, so no hand SIMD is needed.
pub fn xor_acc(acc: &mut [u8], data: &[u8]) {
    let n = acc.len().min(data.len());
    let (acc, data) = (&mut acc[..n], &data[..n]);
    let mut ac = acc.chunks_exact_mut(8);
    let mut dc = data.chunks_exact(8);
    for (a, d) in ac.by_ref().zip(dc.by_ref()) {
        let a8: &mut [u8; 8] = a.try_into().expect("exact 8-byte chunk");
        let d8: &[u8; 8] = d.try_into().expect("exact 8-byte chunk");
        *a8 = (u64::from_ne_bytes(*a8) ^ u64::from_ne_bytes(*d8)).to_ne_bytes();
    }
    for (a, d) in ac.into_remainder().iter_mut().zip(dc.remainder()) {
        *a ^= d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf;

    /// Satellite: every (coefficient, byte) pair agrees with the log/exp
    /// scalar multiplication — 256×256 exhaustive.
    #[test]
    fn all_pairs_match_log_exp() {
        for c in 0..=255u8 {
            let t = NibbleTable::new(Gf256(c));
            for b in 0..=255u8 {
                assert_eq!(
                    t.mul(b),
                    (Gf256(c) * Gf256(b)).value(),
                    "c={c:#04x} b={b:#04x}"
                );
            }
        }
    }

    /// Lengths straddling every kernel boundary: empty, sub-block tails,
    /// exact SIMD widths, and off-by-one around them.
    const LENS: [usize; 16] = [0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 257];

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn mul_acc_matches_scalar_all_lengths() {
        for c in [0u8, 1, 2, 3, 0x1D, 0x53, 0x80, 0xFF] {
            let t = NibbleTable::new(Gf256(c));
            for &len in &LENS {
                let data = pattern(len, c);
                let mut fast = pattern(len, 0xA5);
                let mut scalar = fast.clone();
                t.mul_acc(&mut fast, &data);
                gf::mul_acc(&mut scalar, &data, Gf256(c));
                assert_eq!(fast, scalar, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn mul_slice_matches_scalar_all_lengths() {
        for c in [0u8, 1, 2, 0x1D, 0xB7, 0xFF] {
            let t = NibbleTable::new(Gf256(c));
            for &len in &LENS {
                let mut fast = pattern(len, 9);
                let mut scalar = fast.clone();
                t.mul_slice(&mut fast);
                gf::mul_slice(&mut scalar, Gf256(c));
                assert_eq!(fast, scalar, "c={c} len={len}");
            }
        }
    }

    /// Unaligned starts: slices offset from the allocation base exercise
    /// the unaligned SIMD loads and the sub-block tail handling together.
    #[test]
    fn unaligned_slices_and_short_tails() {
        let t = NibbleTable::new(Gf256(0x6B));
        for off in 0..9 {
            for &len in &[0usize, 1, 5, 16, 33, 100] {
                let data = pattern(off + len, 3);
                let mut fast = pattern(off + len, 0x5A);
                let mut scalar = fast.clone();
                t.mul_acc(&mut fast[off..], &data[off..]);
                gf::mul_acc(&mut scalar[off..], &data[off..], Gf256(0x6B));
                assert_eq!(fast, scalar, "off={off} len={len}");
            }
        }
    }

    /// `acc` longer than `data`: the tail past `data.len()` is untouched
    /// (implicit zero padding semantics).
    #[test]
    fn longer_acc_tail_untouched() {
        let t = NibbleTable::new(Gf256(7));
        let data = pattern(40, 1);
        let mut acc = vec![0x11u8; 100];
        t.mul_acc(&mut acc, &data);
        assert!(acc[40..].iter().all(|&b| b == 0x11));
        let mut expect = vec![0x11u8; 40];
        gf::mul_acc(&mut expect, &data, Gf256(7));
        assert_eq!(&acc[..40], &expect[..]);
    }

    #[test]
    fn xor_acc_is_coefficient_one() {
        for &len in &LENS {
            let data = pattern(len, 2);
            let mut a = pattern(len, 0x77);
            let mut b = a.clone();
            xor_acc(&mut a, &data);
            gf::mul_acc(&mut b, &data, Gf256(1));
            assert_eq!(a, b, "len={len}");
        }
    }
}
