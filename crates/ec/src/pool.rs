//! A small fork-join worker pool built on scoped std threads.
//!
//! `fusion-core` uses this to encode, scrub, and reconstruct stripes in
//! parallel. The pool is deliberately minimal — no queues, no channels, no
//! external dependencies: each call to [`WorkerPool::for_each_mut`]
//! partitions the work slice into contiguous chunks and runs one scoped
//! thread per chunk. Every item is visited by exactly one thread, so
//! workers mutate disjoint `&mut` regions and per-item scratch buffers
//! (e.g. reusable parity vectors) never need synchronization.
//!
//! With `threads == 1` (or a single-item slice) no thread is spawned and
//! the closure runs inline, keeping the sequential path allocation- and
//! syscall-free.

/// A fixed-width fork-join worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool that fans work out across `threads` workers.
    /// A value of zero is clamped to one.
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Sizes the pool from the machine: `available_parallelism`, capped at
    /// eight (EC kernels saturate memory bandwidth well before that on
    /// typical hardware — see DESIGN.md §9 for thread-count guidance).
    pub fn auto() -> WorkerPool {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        WorkerPool::new(threads.min(8))
    }

    /// Number of worker threads this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index, item)` to every item, in parallel across the
    /// pool's workers. Items are split into contiguous chunks, one chunk
    /// per worker; `index` is the item's position in `items`.
    ///
    /// Runs inline without spawning when one worker (or one item) suffices.
    /// A panic in `f` propagates to the caller after all workers join.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = items.len().div_ceil(workers);
        std::thread::scope(|s| {
            for (ci, part) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || {
                    for (j, item) in part.iter_mut().enumerate() {
                        f(ci * chunk + j, item);
                    }
                });
            }
        });
    }
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_clamped_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert!(WorkerPool::auto().threads() >= 1);
    }

    #[test]
    fn visits_every_item_exactly_once_with_correct_index() {
        for threads in [1, 2, 3, 8, 16] {
            let pool = WorkerPool::new(threads);
            let mut items: Vec<usize> = vec![0; 11];
            let calls = AtomicUsize::new(0);
            pool.for_each_mut(&mut items, |i, item| {
                *item = i * 10;
                calls.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(calls.load(Ordering::SeqCst), 11, "threads={threads}");
            for (i, item) in items.iter().enumerate() {
                assert_eq!(*item, i * 10, "threads={threads} item={i}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_result() {
        let serial_pool = WorkerPool::new(1);
        let parallel_pool = WorkerPool::new(4);
        let work = |_: usize, v: &mut u64| {
            let mut x = *v;
            for _ in 0..100 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *v = x;
        };
        let mut a: Vec<u64> = (0..37).collect();
        let mut b = a.clone();
        serial_pool.for_each_mut(&mut a, work);
        parallel_pool.for_each_mut(&mut b, work);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_slice_is_fine() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u8> = Vec::new();
        pool.for_each_mut(&mut items, |_, _| panic!("must not be called"));
    }

    #[test]
    fn more_threads_than_items() {
        let pool = WorkerPool::new(8);
        let mut items = vec![1u8, 2];
        pool.for_each_mut(&mut items, |_, v| *v += 1);
        assert_eq!(items, vec![2, 3]);
    }
}
