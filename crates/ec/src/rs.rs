//! Systematic Reed-Solomon erasure codes over GF(2^8).
//!
//! An `(n, k)` code turns `k` data blocks into `n - k` parity blocks such
//! that the stripe survives the loss of any `n - k` of its `n` blocks.
//! Because the code is *systematic*, the data blocks are stored verbatim —
//! the property Fusion relies on to run computations directly on storage
//! nodes without decoding.
//!
//! Unlike textbook implementations, [`ReedSolomon::encode`] accepts data
//! blocks of **different lengths**: shorter blocks are treated as if they
//! were zero-padded to the length of the longest block in the stripe, and
//! the parity blocks have that maximum length. This matches the stripe
//! semantics of the paper (§2, Figure 2): the parity size — and therefore
//! the storage overhead — of a stripe is dictated solely by its largest
//! data block.

use std::sync::Arc;

use crate::codec::{Codec, CodecKind};
use crate::matrix::Matrix;

/// Errors from constructing a [`ReedSolomon`] codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeParamsError {
    /// `k` was zero.
    ZeroDataBlocks,
    /// `n <= k`, leaving no parity.
    NoParityBlocks,
    /// `n > 256`: GF(2^8) supports at most 256 blocks per stripe.
    TooManyBlocks,
    /// Locally-repairable code with a group count that does not divide
    /// `k`, is zero, or leaves no global parity (see
    /// [`crate::lrc::LrcCodec::with_codec`]).
    InvalidLocalGroups,
}

impl std::fmt::Display for CodeParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeParamsError::ZeroDataBlocks => write!(f, "k must be at least 1"),
            CodeParamsError::NoParityBlocks => write!(f, "n must exceed k"),
            CodeParamsError::TooManyBlocks => write!(f, "n must be at most 256"),
            CodeParamsError::InvalidLocalGroups => write!(
                f,
                "local group count must divide k and leave at least one global parity"
            ),
        }
    }
}

impl std::error::Error for CodeParamsError {}

/// Errors from [`ReedSolomon::reconstruct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructError {
    /// Fewer than `k` blocks survive; the stripe is unrecoverable.
    TooFewBlocks {
        /// How many blocks were present.
        present: usize,
        /// How many are required (`k`).
        required: usize,
    },
    /// The shard vector length does not equal `n`.
    WrongShardCount {
        /// Provided length.
        got: usize,
        /// Expected `n`.
        expected: usize,
    },
    /// A present shard is longer than the declared stripe width.
    ShardTooLong,
    /// Enough shards are present by count, but their generator rows do
    /// not determine the erased blocks (only possible for non-MDS codes
    /// such as [`crate::lrc::LrcCodec`], where which shards survive
    /// matters, not just how many).
    NotRecoverable,
}

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructError::TooFewBlocks { present, required } => write!(
                f,
                "unrecoverable stripe: {present} blocks present, {required} required"
            ),
            ReconstructError::WrongShardCount { got, expected } => {
                write!(f, "expected {expected} shard slots, got {got}")
            }
            ReconstructError::ShardTooLong => {
                write!(f, "a shard exceeds the declared stripe width")
            }
            ReconstructError::NotRecoverable => {
                write!(f, "surviving shards do not determine the erased blocks")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

/// A systematic `(n, k)` Reed-Solomon codec.
///
/// The paper's default configuration is RS(9, 6); RS(14, 10) is the other
/// common production setting. Any `1 ≤ k < n ≤ 256` works.
///
/// # Examples
///
/// ```
/// use fusion_ec::rs::ReedSolomon;
///
/// let rs = ReedSolomon::new(9, 6)?;
/// let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 64]).collect();
/// let parity = rs.encode(&data);
/// assert_eq!(parity.len(), 3);
///
/// // Lose three arbitrary blocks and recover them.
/// let mut shards: Vec<Option<Vec<u8>>> =
///     data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
/// shards[0] = None;
/// shards[5] = None;
/// shards[7] = None;
/// rs.reconstruct(&mut shards, 64)?;
/// assert_eq!(shards[0].as_deref(), Some(&[0u8; 64][..]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    encode_matrix: Matrix,
    codec: Arc<dyn Codec>,
}

impl ReedSolomon {
    /// Creates an `(n, k)` codec with the default GF(2^8) kernel
    /// ([`CodecKind::Fast`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodeParamsError`] for degenerate parameters.
    pub fn new(n: usize, k: usize) -> Result<ReedSolomon, CodeParamsError> {
        ReedSolomon::with_codec(n, k, CodecKind::default())
    }

    /// Creates an `(n, k)` codec with an explicit GF(2^8) kernel choice.
    ///
    /// The codec's coefficient tables are built here, once per instance;
    /// `encode`/`reconstruct` never rebuild tables on the hot path.
    ///
    /// # Errors
    ///
    /// Returns [`CodeParamsError`] for degenerate parameters.
    pub fn with_codec(
        n: usize,
        k: usize,
        codec: CodecKind,
    ) -> Result<ReedSolomon, CodeParamsError> {
        if k == 0 {
            return Err(CodeParamsError::ZeroDataBlocks);
        }
        if n <= k {
            return Err(CodeParamsError::NoParityBlocks);
        }
        if n > 256 {
            return Err(CodeParamsError::TooManyBlocks);
        }
        Ok(ReedSolomon {
            n,
            k,
            encode_matrix: Matrix::systematic_encode_matrix(n, k),
            codec: codec.build(),
        })
    }

    /// Which GF(2^8) kernel this instance multiplies with.
    pub fn codec_kind(&self) -> CodecKind {
        self.codec.kind()
    }

    /// Total blocks per stripe (`n`).
    pub fn total_blocks(&self) -> usize {
        self.n
    }

    /// Data blocks per stripe (`k`).
    pub fn data_blocks(&self) -> usize {
        self.k
    }

    /// Parity blocks per stripe (`n − k`).
    pub fn parity_blocks(&self) -> usize {
        self.n - self.k
    }

    /// Optimal storage overhead of this code: `(n − k) / k`.
    pub fn optimal_overhead(&self) -> f64 {
        (self.n - self.k) as f64 / self.k as f64
    }

    /// Encodes `k` (possibly variable-length) data blocks into `n − k`
    /// parity blocks, each as long as the longest data block.
    ///
    /// Short data blocks are implicitly zero-padded: the pad bytes never
    /// need to be materialized or stored, but reconstruction will return
    /// padded blocks that the caller truncates to the original lengths.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Vec<Vec<u8>> {
        let mut parity = Vec::new();
        self.encode_into(data, &mut parity);
        parity
    }

    /// Like [`ReedSolomon::encode`], but writes the parity into
    /// caller-provided buffers so repeated stripes reuse allocations.
    ///
    /// `parity` is resized to `n − k` vectors and each vector to the
    /// stripe width; existing capacity is reused, so a caller encoding
    /// many stripes of similar width pays no per-stripe allocation. Any
    /// prior contents of `parity` are overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode_into<T: AsRef<[u8]>>(&self, data: &[T], parity: &mut Vec<Vec<u8>>) {
        assert_eq!(data.len(), self.k, "expected exactly k data blocks");
        let width = data.iter().map(|d| d.as_ref().len()).max().unwrap_or(0);
        let m = self.n - self.k;
        parity.truncate(m);
        parity.resize_with(m, Vec::new);
        for out in parity.iter_mut() {
            out.clear();
            out.resize(width, 0);
        }
        for (p, out) in parity.iter_mut().enumerate() {
            let row = self.encode_matrix.row(self.k + p);
            for (j, d) in data.iter().enumerate() {
                self.codec.mul_acc(out, d.as_ref(), row[j]);
            }
        }
    }

    /// Verifies that a full stripe (data followed by parity, all padded to
    /// equal width) is consistent with this code.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != n`.
    pub fn verify<T: AsRef<[u8]>>(&self, shards: &[T]) -> bool {
        assert_eq!(shards.len(), self.n, "expected n shards");
        let expected = self.encode(&shards[..self.k]);
        expected
            .iter()
            .zip(&shards[self.k..])
            .all(|(e, s)| pad_eq(e, s.as_ref()))
    }

    /// Recovers all missing shards in place.
    ///
    /// `shards` must have exactly `n` slots (data blocks first, then
    /// parity). Present shards may be shorter than `width` (their implicit
    /// zero padding is reinstated for the math); reconstructed shards are
    /// returned with length exactly `width`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `k` shards are present, the slot count is wrong,
    /// or a present shard exceeds `width`.
    pub fn reconstruct(
        &self,
        shards: &mut [Option<Vec<u8>>],
        width: usize,
    ) -> Result<(), ReconstructError> {
        if shards.len() != self.n {
            return Err(ReconstructError::WrongShardCount {
                got: shards.len(),
                expected: self.n,
            });
        }
        let present: Vec<usize> = (0..self.n).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(ReconstructError::TooFewBlocks {
                present: present.len(),
                required: self.k,
            });
        }
        if present
            .iter()
            .any(|&i| shards[i].as_ref().is_some_and(|s| s.len() > width))
        {
            return Err(ReconstructError::ShardTooLong);
        }
        let missing: Vec<usize> = (0..self.n).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }

        // Decode matrix: rows of the encode matrix for k surviving shards,
        // inverted, recovers the original data from those survivors.
        let chosen = &present[..self.k];
        let sub = self.encode_matrix.select_rows(chosen);
        let inv = sub
            .invert()
            .expect("any k rows of an MDS encode matrix are invertible");

        // Zero-pad survivors we will read from.
        let survivors: Vec<Vec<u8>> = chosen
            .iter()
            .map(|&i| {
                let mut s = shards[i].clone().expect("chosen shards are present");
                s.resize(width, 0);
                s
            })
            .collect();

        // Recover missing *data* shards directly from inv × survivors.
        for &m in missing.iter().filter(|&&m| m < self.k) {
            let mut out = vec![0u8; width];
            for (j, s) in survivors.iter().enumerate() {
                self.codec.mul_acc(&mut out, s, inv.get(m, j));
            }
            shards[m] = Some(out);
        }

        // Recover missing parity shards by re-encoding: parity row of the
        // encode matrix times the (now complete) data shards. Compose the
        // two matrix products so we only touch survivor buffers:
        // parity_row × (inv × survivors).
        let missing_parity: Vec<usize> = missing.iter().copied().filter(|&m| m >= self.k).collect();
        if !missing_parity.is_empty() {
            // All data shards exist now; use them directly (cheaper and
            // simpler than composing matrices).
            let data: Vec<Vec<u8>> = (0..self.k)
                .map(|i| {
                    let mut s = shards[i].clone().expect("data shards recovered above");
                    s.resize(width, 0);
                    s
                })
                .collect();
            for m in missing_parity {
                let row = self.encode_matrix.row(m);
                let mut out = vec![0u8; width];
                for (j, d) in data.iter().enumerate() {
                    self.codec.mul_acc(&mut out, d, row[j]);
                }
                shards[m] = Some(out);
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for ReedSolomon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RS({}, {})", self.n, self.k)
    }
}

/// Compares two byte strings as if both were zero-padded to equal length.
pub(crate) fn pad_eq(a: &[u8], b: &[u8]) -> bool {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    long[..short.len()] == *short && long[short.len()..].iter().all(|&x| x == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| (j as u8).wrapping_mul(31).wrapping_add(i as u8 ^ seed))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn bad_params_rejected() {
        assert_eq!(
            ReedSolomon::new(9, 0).unwrap_err(),
            CodeParamsError::ZeroDataBlocks
        );
        assert_eq!(
            ReedSolomon::new(6, 6).unwrap_err(),
            CodeParamsError::NoParityBlocks
        );
        assert_eq!(
            ReedSolomon::new(5, 6).unwrap_err(),
            CodeParamsError::NoParityBlocks
        );
        assert_eq!(
            ReedSolomon::new(257, 6).unwrap_err(),
            CodeParamsError::TooManyBlocks
        );
        assert!(ReedSolomon::new(9, 6).is_ok());
    }

    #[test]
    fn encode_produces_expected_counts() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = sample_data(6, 100, 1);
        let parity = rs.encode(&data);
        assert_eq!(parity.len(), 3);
        assert!(parity.iter().all(|p| p.len() == 100));
        assert_eq!(rs.optimal_overhead(), 0.5);
    }

    #[test]
    fn verify_accepts_encoded_stripe() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = sample_data(6, 64, 7);
        let parity = rs.encode(&data);
        let shards: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        assert!(rs.verify(&shards));
    }

    #[test]
    fn verify_rejects_corruption() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = sample_data(6, 64, 7);
        let parity = rs.encode(&data);
        let mut shards: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        shards[3][10] ^= 0x01;
        assert!(!rs.verify(&shards));
    }

    #[test]
    fn reconstruct_any_three_losses() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = sample_data(6, 48, 3);
        let parity = rs.encode(&data);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        // Exhaust all 3-subsets of 9.
        for a in 0..9 {
            for b in (a + 1)..9 {
                for c in (b + 1)..9 {
                    let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                    shards[a] = None;
                    shards[b] = None;
                    shards[c] = None;
                    rs.reconstruct(&mut shards, 48).unwrap();
                    for (i, s) in shards.iter().enumerate() {
                        assert_eq!(s.as_deref(), Some(&full[i][..]), "shard {i} ({a},{b},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn reconstruct_fails_with_too_few() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = sample_data(6, 16, 0);
        let parity = rs.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        for s in shards.iter_mut().take(4) {
            *s = None;
        }
        assert!(matches!(
            rs.reconstruct(&mut shards, 16),
            Err(ReconstructError::TooFewBlocks {
                present: 5,
                required: 6
            })
        ));
    }

    #[test]
    fn variable_length_stripe_roundtrip() {
        // The core Fusion property: blocks of unequal size, parity sized to
        // the largest, short blocks recovered after truncation.
        let rs = ReedSolomon::new(9, 6).unwrap();
        let lens = [100usize, 7, 64, 0, 99, 100];
        let data: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| (0..l).map(|j| (i * 37 + j * 11) as u8).collect())
            .collect();
        let parity = rs.encode(&data);
        assert!(parity.iter().all(|p| p.len() == 100));

        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        // Lose two short data blocks and one parity.
        shards[1] = None;
        shards[3] = None;
        shards[8] = None;
        rs.reconstruct(&mut shards, 100).unwrap();
        for (i, &l) in lens.iter().enumerate() {
            let got = shards[i].as_ref().unwrap();
            assert_eq!(&got[..l], &data[i][..], "data block {i}");
            assert!(got[l..].iter().all(|&b| b == 0), "padding of block {i}");
        }
    }

    #[test]
    fn reconstruct_noop_when_complete() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(3, 10, 9);
        let parity = rs.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .clone()
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let before = shards.clone();
        rs.reconstruct(&mut shards, 10).unwrap();
        assert_eq!(shards, before);
    }

    #[test]
    fn wrong_shard_count_detected() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 4]); 8];
        assert!(matches!(
            rs.reconstruct(&mut shards, 4),
            Err(ReconstructError::WrongShardCount {
                got: 8,
                expected: 9
            })
        ));
    }

    #[test]
    fn shard_longer_than_width_detected() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(3, 10, 2);
        let parity = rs.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[4] = None;
        assert_eq!(
            rs.reconstruct(&mut shards, 5),
            Err(ReconstructError::ShardTooLong)
        );
    }

    #[test]
    fn rs_14_10_roundtrip() {
        let rs = ReedSolomon::new(14, 10).unwrap();
        let data = sample_data(10, 33, 5);
        let parity = rs.encode(&data);
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for i in [0, 4, 9, 12] {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards, 33).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]), "shard {i}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ReedSolomon::new(9, 6).unwrap().to_string(), "RS(9, 6)");
    }

    #[test]
    fn zero_width_stripe() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let parity = rs.encode(&[vec![], vec![]]);
        assert!(parity.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn default_codec_is_fast_and_scalar_selectable() {
        assert_eq!(
            ReedSolomon::new(9, 6).unwrap().codec_kind(),
            CodecKind::Fast
        );
        let rs = ReedSolomon::with_codec(9, 6, CodecKind::Scalar).unwrap();
        assert_eq!(rs.codec_kind(), CodecKind::Scalar);
        // Cloning shares the codec instance (and its table cache).
        assert_eq!(rs.clone().codec_kind(), CodecKind::Scalar);
    }

    #[test]
    fn encode_into_agrees_with_encode() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data = sample_data(6, 100, 4);
        let fresh = rs.encode(&data);

        let mut reused = Vec::new();
        rs.encode_into(&data, &mut reused);
        assert_eq!(reused, fresh);

        // Reuse with dirty, wrongly-sized buffers: a longer previous stripe
        // (stale bytes must be cleared) and too many vectors.
        let data2 = sample_data(6, 33, 9);
        reused.push(vec![0xFF; 500]);
        for p in reused.iter_mut() {
            p.resize(200, 0xEE);
        }
        rs.encode_into(&data2, &mut reused);
        assert_eq!(reused, rs.encode(&data2));

        // And growing again after a shorter stripe.
        rs.encode_into(&data, &mut reused);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn encode_into_reuses_capacity() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let mut parity = Vec::new();
        rs.encode_into(&sample_data(6, 256, 1), &mut parity);
        let ptrs: Vec<*const u8> = parity.iter().map(|p| p.as_ptr()).collect();
        rs.encode_into(&sample_data(6, 100, 2), &mut parity);
        let after: Vec<*const u8> = parity.iter().map(|p| p.as_ptr()).collect();
        assert_eq!(ptrs, after, "smaller stripe must not reallocate parity");
    }

    #[test]
    fn scalar_and_fast_agree_end_to_end() {
        let data = sample_data(6, 97, 8);
        let scalar = ReedSolomon::with_codec(9, 6, CodecKind::Scalar).unwrap();
        let fast = ReedSolomon::with_codec(9, 6, CodecKind::Fast).unwrap();
        assert_eq!(scalar.encode(&data), fast.encode(&data));
    }
}
