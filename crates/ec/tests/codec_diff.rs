//! Differential test layer: `FastCodec` must be byte-identical to
//! `ScalarCodec` on every public codec operation.
//!
//! The scalar path is the trusted reference (it is exercised directly
//! against the field axioms in `proptests.rs`); these tests pin the
//! optimized split-nibble kernels to it across:
//!
//! * random `(n, k)` with `n` in `2..=16`,
//! * random shard lengths including 0, 1, odd, and non-multiple-of-8,
//! * every missing-shard combination up to `m = n − k` losses (enumerated
//!   exhaustively when the pattern count is small, deterministically
//!   sampled otherwise).

use fusion_ec::codec::CodecKind;
use fusion_ec::rs::ReedSolomon;
use proptest::prelude::*;

/// Number of loss patterns per generated stripe before we switch from
/// exhaustive enumeration to deterministic sampling.
const MAX_PATTERNS: u64 = 256;

/// All bitmasks over `n` shards with `1..=m` bits set — exhaustive when
/// there are at most [`MAX_PATTERNS`], otherwise a deterministic
/// splitmix64-driven sample of the same size.
fn loss_masks(n: usize, m: usize, seed: u64) -> Vec<u32> {
    let all: Vec<u32> = (1u32..1 << n)
        .filter(|mask| (1..=m as u32).contains(&mask.count_ones()))
        .collect();
    if all.len() as u64 <= MAX_PATTERNS {
        return all;
    }
    let mut state = seed | 1;
    let mut picked = std::collections::BTreeSet::new();
    while (picked.len() as u64) < MAX_PATTERNS {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        picked.insert(all[(z % all.len() as u64) as usize]);
    }
    picked.into_iter().collect()
}

/// Applies one loss mask and reconstructs under the given codec.
fn reconstruct_under(
    rs: &ReedSolomon,
    full: &[Vec<u8>],
    width: usize,
    mask: u32,
) -> Vec<Option<Vec<u8>>> {
    let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
    for (i, s) in shards.iter_mut().enumerate() {
        if mask & (1 << i) != 0 {
            *s = None;
        }
    }
    rs.reconstruct(&mut shards, width).unwrap();
    shards
}

/// Shard lengths biased toward the edge cases the kernels care about:
/// empty, single byte, odd, non-multiple-of-8, and SIMD-width straddlers.
fn shard_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(7usize),
        Just(8usize),
        Just(9usize),
        Just(31usize),
        Just(33usize),
        3usize..48,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode agreement: parity from both codecs is byte-identical for
    /// random (n, k) and variable-length stripes.
    #[test]
    fn encode_is_byte_identical(
        nk in (2usize..=16).prop_flat_map(|n| (Just(n), 1usize..n)),
        seed: u64,
        lens in prop::collection::vec(shard_len(), 16),
    ) {
        let (n, k) = nk;
        let data: Vec<Vec<u8>> = lens[..k]
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (0..l)
                    .map(|j| (seed as usize + i * 131 + j * 29) as u8)
                    .collect()
            })
            .collect();
        let scalar = ReedSolomon::with_codec(n, k, CodecKind::Scalar).unwrap();
        let fast = ReedSolomon::with_codec(n, k, CodecKind::Fast).unwrap();
        let ps = scalar.encode(&data);
        let pf = fast.encode(&data);
        prop_assert_eq!(&ps, &pf);

        // encode_into must agree with encode, including when reusing a
        // dirty buffer from a previous (differently sized) stripe.
        let mut reused = vec![vec![0xFFu8; 200]; 7];
        fast.encode_into(&data, &mut reused);
        prop_assert_eq!(&reused, &pf);
    }

    /// Reconstruct agreement: for every loss pattern up to m losses, both
    /// codecs recover the identical stripe.
    #[test]
    fn reconstruct_is_byte_identical(
        nk in (2usize..=16).prop_flat_map(|n| (Just(n), 1usize..n)),
        seed: u64,
        lens in prop::collection::vec(shard_len(), 16),
    ) {
        let (n, k) = nk;
        let data: Vec<Vec<u8>> = lens[..k]
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (0..l)
                    .map(|j| (seed as usize ^ (i * 251 + j * 17)) as u8)
                    .collect()
            })
            .collect();
        let width = data.iter().map(Vec::len).max().unwrap_or(0);

        let scalar = ReedSolomon::with_codec(n, k, CodecKind::Scalar).unwrap();
        let fast = ReedSolomon::with_codec(n, k, CodecKind::Fast).unwrap();
        let parity = scalar.encode(&data);
        prop_assert_eq!(&parity, &fast.encode(&data));

        // Reference stripe, padded to full width.
        let full: Vec<Vec<u8>> = data
            .iter()
            .map(|d| {
                let mut d = d.clone();
                d.resize(width, 0);
                d
            })
            .chain(parity)
            .collect();

        for mask in loss_masks(n, n - k, seed) {
            let rs_s = reconstruct_under(&scalar, &full, width, mask);
            let rs_f = reconstruct_under(&fast, &full, width, mask);
            prop_assert_eq!(&rs_s, &rs_f, "mask {:#b}", mask);
            for (i, s) in rs_f.iter().enumerate() {
                prop_assert_eq!(
                    s.as_deref(),
                    Some(&full[i][..]),
                    "shard {} mask {:#b}",
                    i,
                    mask
                );
            }
        }
    }
}

/// Deterministic backstop: RS(9, 6) — the paper's default code — with a
/// variable-length stripe, every one of the 129 loss patterns of size
/// 1..=3 enumerated exhaustively under both codecs.
#[test]
fn rs96_all_loss_patterns_exhaustive() {
    let lens = [40usize, 0, 1, 7, 33, 40];
    let data: Vec<Vec<u8>> = lens
        .iter()
        .enumerate()
        .map(|(i, &l)| (0..l).map(|j| (i * 83 + j * 7) as u8).collect())
        .collect();
    let width = 40;

    let scalar = ReedSolomon::with_codec(9, 6, CodecKind::Scalar).unwrap();
    let fast = ReedSolomon::with_codec(9, 6, CodecKind::Fast).unwrap();
    let parity = scalar.encode(&data);
    assert_eq!(parity, fast.encode(&data));

    let full: Vec<Vec<u8>> = data
        .iter()
        .map(|d| {
            let mut d = d.clone();
            d.resize(width, 0);
            d
        })
        .chain(parity)
        .collect();

    let masks = loss_masks(9, 3, 0);
    assert_eq!(masks.len(), 9 + 36 + 84, "enumeration must be exhaustive");
    for mask in masks {
        let rs_s = reconstruct_under(&scalar, &full, width, mask);
        let rs_f = reconstruct_under(&fast, &full, width, mask);
        assert_eq!(rs_s, rs_f, "mask {mask:#b}");
        for (i, s) in rs_f.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]), "shard {i} mask {mask:#b}");
        }
    }
}

/// Zero-width stripes must be handled identically too.
#[test]
fn zero_width_stripe_agrees() {
    for kind in [CodecKind::Scalar, CodecKind::Fast] {
        let rs = ReedSolomon::with_codec(4, 2, kind).unwrap();
        let parity = rs.encode(&[Vec::new(), Vec::new()]);
        assert!(parity.iter().all(Vec::is_empty), "{kind}");
        let mut shards: Vec<Option<Vec<u8>>> = vec![None, Some(vec![]), Some(vec![]), Some(vec![])];
        rs.reconstruct(&mut shards, 0).unwrap();
        assert_eq!(shards[0].as_deref(), Some(&[][..]), "{kind}");
    }
}
