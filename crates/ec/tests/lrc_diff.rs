//! Differential suite for the locally-repairable code: `LrcCodec` is
//! pinned against `ScalarCodec`-backed runs and against plain
//! Reed-Solomon semantics across sampled loss masks — including masks
//! that exceed local repairability and must fall back to global
//! reconstruction.
//!
//! Three layers of comparison:
//!
//! * **kernel differential** — fast vs scalar GF(2^8) paths produce
//!   byte-identical parity and byte-identical recovery for the same mask;
//! * **ground-truth recovery** — every within-tolerance mask restores the
//!   exact original bytes (zero-padded to stripe width), never a
//!   plausible-but-wrong stripe;
//! * **repair-source soundness** — whatever `repair_sources` proposes is
//!   sufficient: handing exactly those shards to `repair_one` rebuilds
//!   the lost shard; local-group sources are used iff the family is
//!   intact.

use fusion_ec::codec::CodecKind;
use fusion_ec::lrc::LrcCodec;
use fusion_ec::rs::ReconstructError;
use fusion_ec::stripe::StripeCodec;
use proptest::prelude::*;

/// The LRC shapes under test: (n, k, l). All keep tolerance g + 1 = 3.
const SHAPES: [(usize, usize, usize); 3] = [(10, 6, 2), (10, 6, 3), (14, 10, 2)];

fn stripe_for(lrc: &LrcCodec, data: &[Vec<u8>], width: usize) -> Vec<Vec<u8>> {
    let parity = lrc.encode(data);
    data.iter()
        .map(|d| {
            let mut d = d.clone();
            d.resize(width, 0);
            d
        })
        .chain(parity)
        .collect()
}

proptest! {
    /// Fast and scalar kernels produce identical parity, and identical
    /// recovered bytes for the same loss mask.
    #[test]
    fn fast_and_scalar_recover_identically(
        shape in 0usize..SHAPES.len(),
        data_seed: u8,
        widths in prop::collection::vec(0usize..180, 10),
        erase in prop::collection::btree_set(0usize..14, 1..=3),
    ) {
        let (n, k, l) = SHAPES[shape];
        let fast = LrcCodec::with_codec(n, k, l, CodecKind::Fast).unwrap();
        let scalar = LrcCodec::with_codec(n, k, l, CodecKind::Scalar).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..widths[i % widths.len()])
                    .map(|j| (data_seed as usize * 37 + i * 131 + j * 7) as u8)
                    .collect()
            })
            .collect();
        prop_assert_eq!(fast.encode(&data), scalar.encode(&data));

        let width = data.iter().map(Vec::len).max().unwrap_or(0);
        let stripe = stripe_for(&fast, &data, width);
        let erase: Vec<usize> = erase.into_iter().filter(|&e| e < n).collect();
        let mut a: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        let mut b = a.clone();
        for &e in &erase {
            a[e] = None;
            b[e] = None;
        }
        let ra = fast.reconstruct(&mut a, width);
        let rb = scalar.reconstruct(&mut b, width);
        prop_assert_eq!(&ra, &rb);
        if ra.is_ok() {
            prop_assert_eq!(a, b);
        }
    }

    /// Every within-tolerance mask recovers the exact original bytes.
    #[test]
    fn recovery_is_ground_truth(
        shape in 0usize..SHAPES.len(),
        data in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 10),
        erase in prop::collection::btree_set(0usize..14, 1..=3),
    ) {
        let (n, k, l) = SHAPES[shape];
        let lrc = LrcCodec::new(n, k, l).unwrap();
        let data = &data[..k];
        let width = data.iter().map(Vec::len).max().unwrap_or(0);
        let stripe = stripe_for(&lrc, data, width);
        let erase: Vec<usize> = erase.into_iter().filter(|&e| e < n).collect();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        for &e in &erase {
            shards[e] = None;
        }
        lrc.reconstruct(&mut shards, width).unwrap();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_deref(), Some(&stripe[i][..]), "shard {}", i);
        }
    }

    /// `repair_sources` is sound and minimal-path-aware: the proposed
    /// sources alone rebuild the shard, the local family is proposed iff
    /// intact, and masks that break the family fall back to a ≥ k global
    /// set (still byte-exact).
    #[test]
    fn repair_sources_sufficient_including_global_fallback(
        shape in 0usize..SHAPES.len(),
        data in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..100), 10),
        down in prop::collection::btree_set(0usize..14, 1..=3),
    ) {
        let (n, k, l) = SHAPES[shape];
        let lrc = LrcCodec::new(n, k, l).unwrap();
        let data = &data[..k];
        let width = data.iter().map(Vec::len).max().unwrap_or(0);
        let stripe = stripe_for(&lrc, data, width);
        let down: Vec<usize> = down.into_iter().filter(|&e| e < n).collect();
        if down.is_empty() {
            return Ok(());
        }
        let lost = down[0];
        let avail: Vec<bool> = (0..n).map(|i| !down.contains(&i)).collect();

        let Some(sources) = lrc.repair_sources(lost, &avail) else {
            // Within tolerance this never happens; larger masks may be
            // genuinely unrecoverable, which reconstruct must agree with.
            let mut shards: Vec<Option<Vec<u8>>> =
                stripe.iter().cloned().map(Some).collect();
            for &e in &down {
                shards[e] = None;
            }
            let err = lrc.reconstruct(&mut shards, width).unwrap_err();
            prop_assert!(matches!(
                err,
                ReconstructError::NotRecoverable | ReconstructError::TooFewBlocks { .. }
            ));
            return Ok(());
        };
        prop_assert!(sources.iter().all(|&s| avail[s]), "sources must be available");
        prop_assert!(!sources.contains(&lost));

        // Local family proposed iff intact; otherwise global fallback
        // reads at least k shards.
        if let Some(g) = lrc.group_of(lost) {
            let family: Vec<usize> =
                lrc.group_members(g).into_iter().filter(|&i| i != lost).collect();
            if family.iter().all(|&i| avail[i]) {
                prop_assert_eq!(&sources, &family, "intact family must be preferred");
                prop_assert!(sources.len() < k, "local repair must beat RS's k reads");
            } else {
                prop_assert!(sources.len() >= k, "broken family falls back to global");
            }
        }

        // Soundness: exactly those sources rebuild the lost shard.
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        for &s in &sources {
            shards[s] = Some(stripe[s].clone());
        }
        lrc.repair_one(&mut shards, lost, width).unwrap();
        prop_assert_eq!(shards[lost].as_deref(), Some(&stripe[lost][..]));
    }

    /// The `StripeCodec` trait view agrees with the inherent API.
    #[test]
    fn trait_object_matches_inherent(
        shape in 0usize..SHAPES.len(),
        data in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..60), 10),
    ) {
        let (n, k, l) = SHAPES[shape];
        let lrc = LrcCodec::new(n, k, l).unwrap();
        let dyncode: &dyn StripeCodec = &lrc;
        prop_assert_eq!(dyncode.total_blocks(), n);
        prop_assert_eq!(dyncode.data_blocks(), k);
        prop_assert_eq!(dyncode.tolerance(), n - k - l + 1);
        prop_assert_eq!(dyncode.label(), lrc.to_string());
        let data = data[..k].to_vec();
        let mut parity = Vec::new();
        dyncode.encode_into(&data, &mut parity);
        prop_assert_eq!(parity, lrc.encode(&data));
        for shard in 0..n {
            prop_assert_eq!(dyncode.placement_group(shard), lrc.group_of(shard));
        }
    }
}
