//! Property-based tests for the GF(2^8) field and the Reed-Solomon codec.

use fusion_ec::gf::Gf256;
use fusion_ec::rs::ReedSolomon;
use proptest::prelude::*;

proptest! {
    #[test]
    fn gf_add_commutative(a: u8, b: u8) {
        prop_assert_eq!(Gf256(a) + Gf256(b), Gf256(b) + Gf256(a));
    }

    #[test]
    fn gf_mul_commutative(a: u8, b: u8) {
        prop_assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
    }

    #[test]
    fn gf_mul_associative(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn gf_distributive(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn gf_sub_is_add(a: u8, b: u8) {
        prop_assert_eq!(Gf256(a) - Gf256(b), Gf256(a) + Gf256(b));
    }

    #[test]
    fn gf_div_mul_roundtrip(a: u8, b in 1u8..) {
        let (a, b) = (Gf256(a), Gf256(b));
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn rs_roundtrip_arbitrary_erasures(
        data in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 6),
        erase in prop::collection::btree_set(0usize..9, 0..=3),
    ) {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let width = data.iter().map(Vec::len).max().unwrap_or(0);
        let parity = rs.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .map(|d| {
                // Store padded so equality below is straightforward.
                let mut d = d.clone();
                d.resize(width, 0);
                Some(d)
            })
            .chain(parity.iter().cloned().map(Some))
            .collect();
        let full: Vec<Vec<u8>> = shards.iter().map(|s| s.clone().unwrap()).collect();
        for &e in &erase {
            shards[e] = None;
        }
        rs.reconstruct(&mut shards, width).unwrap();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_deref(), Some(&full[i][..]));
        }
    }

    #[test]
    fn rs_verify_encoded_stripes(
        data in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 4),
    ) {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let width = data.iter().map(Vec::len).max().unwrap();
        let parity = rs.encode(&data);
        let shards: Vec<Vec<u8>> = data
            .into_iter()
            .map(|mut d| { d.resize(width, 0); d })
            .chain(parity)
            .collect();
        prop_assert!(rs.verify(&shards));
    }

    #[test]
    fn rs_parity_width_is_max_data_len(
        lens in prop::collection::vec(0usize..500, 6),
    ) {
        let rs = ReedSolomon::new(9, 6).unwrap();
        let data: Vec<Vec<u8>> = lens.iter().map(|&l| vec![0xAB; l]).collect();
        let parity = rs.encode(&data);
        let width = *lens.iter().max().unwrap();
        prop_assert!(parity.iter().all(|p| p.len() == width));
    }
}
