//! End-to-end tests for encoded-domain GROUP BY pushdown: grouped
//! results must be *identical* (bit-for-bit, floats included) across the
//! pushdown executor, its coordinator fallback, and the reassembling
//! baseline — and the pushdown path must ship keyed partial states, not
//! rows, cutting wire traffic by an order of magnitude at low group
//! cardinality.

use fusion_core::config::{QueryMode, StoreConfig};
use fusion_core::error::StoreError;
use fusion_core::store::Store;
use fusion_format::prelude::*;
use fusion_sql::error::SqlError;

fn table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("k", LogicalType::Int64),
        Field::new("price", LogicalType::Float64),
        Field::new("cat", LogicalType::Utf8),
        Field::new("bucket", LogicalType::Int64),
    ]);
    Table::new(
        schema,
        vec![
            ColumnData::Int64(
                (0..rows as i64)
                    .map(|i| i.wrapping_mul(48_271) % 10_000)
                    .collect(),
            ),
            ColumnData::Float64((0..rows).map(|i| (i % 977) as f64 * 1.5 + 0.25).collect()),
            ColumnData::Utf8(
                (0..rows)
                    .map(|i| ["a", "b", "c", "d"][i % 4].into())
                    .collect(),
            ),
            // A low-cardinality, heavily-run integer key (RLE-friendly).
            ColumnData::Int64((0..rows).map(|i| (i / 640) as i64).collect()),
        ],
    )
    .unwrap()
}

fn store(agg_pd: bool, mode: QueryMode) -> Store {
    let bytes = write_table(
        &table(4000),
        WriteOptions {
            rows_per_group: 800,
        },
    )
    .unwrap();
    let mut cfg = StoreConfig::fusion().with_aggregate_pushdown(agg_pd);
    cfg.query_mode = mode;
    cfg.cluster.cost = cfg.cluster.cost.clone().scaled_down(1000.0);
    let mut s = Store::new(cfg).unwrap();
    s.put("t", bytes).unwrap();
    s
}

const GROUPED_QUERIES: &[&str] = &[
    "SELECT cat, count(*) FROM t GROUP BY cat",
    "SELECT cat, count(*), sum(price) FROM t WHERE k < 5000 GROUP BY cat",
    "SELECT cat, min(k), max(k), avg(price) FROM t WHERE cat != 'd' GROUP BY cat",
    "SELECT bucket, sum(k), count(k) FROM t WHERE price < 733.0 GROUP BY bucket",
    "SELECT cat, min(cat), max(cat), count(cat) FROM t GROUP BY cat",
    "SELECT count(*), avg(k) FROM t WHERE k >= 0 GROUP BY cat",
    "SELECT cat, bucket, count(*), sum(price) FROM t WHERE k < 8000 GROUP BY cat, bucket",
    "SELECT cat, count(*) FROM t WHERE cat = 'zzz' GROUP BY cat",
];

/// Every executor path — encoded pushdown, coordinator fallback
/// (pushdown off), and the reassembling baseline — must produce exactly
/// the same grouped rows. Floats accumulate per-row in row order on all
/// three paths, so this equality is bitwise, not approximate.
#[test]
fn grouped_results_identical_across_executors() {
    let pushed = store(true, QueryMode::AdaptivePushdown);
    let fallback = store(false, QueryMode::AdaptivePushdown);
    let baseline = store(false, QueryMode::Reassemble);
    for sql in GROUPED_QUERIES {
        let a = pushed.query(sql).expect(sql);
        let b = fallback.query(sql).expect(sql);
        let c = baseline.query(sql).expect(sql);
        assert_eq!(a.result, b.result, "pushdown vs fallback: {sql}");
        assert_eq!(a.result, c.result, "pushdown vs baseline: {sql}");
        assert!(a.result.aggregates.is_empty(), "{sql}");
    }
}

/// At low group cardinality the wire carries a handful of
/// `(group_key, PartialAgg)` states per node instead of rows or chunks:
/// at least a 10x cut against the reassembling baseline.
#[test]
fn grouped_pushdown_moves_10x_fewer_bytes() {
    let pushed = store(true, QueryMode::AdaptivePushdown);
    let fallback = store(false, QueryMode::AdaptivePushdown);
    let baseline = store(false, QueryMode::Reassemble);
    let sql = "SELECT cat, count(*), sum(price), avg(price) FROM t WHERE k < 5000 GROUP BY cat";
    let a = pushed.query(sql).unwrap();
    let b = baseline.query(sql).unwrap();
    let c = fallback.query(sql).unwrap();
    assert!(
        a.net_bytes * 10 <= b.net_bytes,
        "expected >=10x wire cut vs baseline: pushed={} baseline={}",
        a.net_bytes,
        b.net_bytes
    );
    assert!(
        a.net_bytes < c.net_bytes,
        "expected wire cut vs coordinator fallback: pushed={} fallback={}",
        a.net_bytes,
        c.net_bytes
    );
    // The simulated latency improves too.
    assert!(pushed.simulate_solo(&a.workflow) <= baseline.simulate_solo(&b.workflow));
}

/// Grouped queries keep the chunk-accounting conservation invariant and
/// report their per-chunk pushdown decisions.
#[test]
fn grouped_accounting_conserves_and_reports_decisions() {
    let pushed = store(true, QueryMode::AdaptivePushdown);
    let sql = "SELECT cat, count(*), sum(price) FROM t WHERE k < 5000 GROUP BY cat";
    let out = pushed.query(sql).unwrap();
    assert_eq!(
        out.pruned_chunks + out.cache_hits + out.cache_misses,
        out.chunks_considered,
        "conservation"
    );
    assert!(!out.decisions.is_empty());
    assert!(out.decisions.iter().all(|d| d.pushed_down));
    // Keyed states are tiny relative to the wide argument chunks they
    // summarize (the dict/RLE key chunk is itself only a few dozen
    // bytes, so its ratio is allowed to be ~1).
    assert!(out.decisions.iter().any(|d| d.cost_product < 0.1));
    assert!(out.decisions.iter().all(|d| d.cost_product < 4.0));
}

/// A dead node routes the affected row groups through the degraded
/// coordinator fallback without changing the answer.
#[test]
fn grouped_degraded_node_still_correct() {
    let mut pushed = store(true, QueryMode::AdaptivePushdown);
    let sql = "SELECT cat, count(*), sum(price), min(k) FROM t WHERE k < 5000 GROUP BY cat";
    let before = pushed.query(sql).unwrap();
    pushed.fail_node(3).unwrap();
    let degraded = pushed.query(sql).unwrap();
    assert_eq!(before.result, degraded.result);
    pushed.recover_node(3).unwrap();
    let after = pushed.query(sql).unwrap();
    assert_eq!(before.result, after.result);
}

/// SUM over values that exceed `i64` range is a typed overflow error on
/// every executor path, not a silent wrap.
#[test]
fn grouped_sum_overflow_is_typed_error() {
    let schema = Schema::new(vec![
        Field::new("g", LogicalType::Utf8),
        Field::new("v", LogicalType::Int64),
    ]);
    let t = Table::new(
        schema,
        vec![
            ColumnData::Utf8((0..64).map(|_| "x".to_string()).collect()),
            ColumnData::Int64(vec![i64::MAX; 64]),
        ],
    )
    .unwrap();
    let bytes = write_table(&t, WriteOptions { rows_per_group: 32 }).unwrap();
    for (agg_pd, mode) in [
        (true, QueryMode::AdaptivePushdown),
        (false, QueryMode::AdaptivePushdown),
        (false, QueryMode::Reassemble),
    ] {
        let mut cfg = StoreConfig::fusion().with_aggregate_pushdown(agg_pd);
        cfg.query_mode = mode;
        let mut s = Store::new(cfg).unwrap();
        s.put("t", bytes.clone()).unwrap();
        let err = s.query("SELECT g, sum(v) FROM t GROUP BY g").unwrap_err();
        assert!(
            matches!(err, StoreError::Sql(SqlError::Overflow(_))),
            "expected typed overflow, got {err:?}"
        );
    }
}

/// `COUNT(col)` and `COUNT(*)` agree per group end-to-end (the format
/// has no NULLs).
#[test]
fn grouped_count_col_equals_count_star() {
    let pushed = store(true, QueryMode::AdaptivePushdown);
    let out = pushed
        .query("SELECT cat, count(*), count(k) FROM t WHERE k < 7000 GROUP BY cat")
        .unwrap();
    let star = &out.result.columns[1];
    let col = &out.result.columns[2];
    assert_eq!(star.0, "count(*)");
    assert_eq!(col.0, "count(k)");
    assert_eq!(star.1, col.1);
}

/// Zero matches yield zero groups: named, typed, empty output columns.
#[test]
fn grouped_zero_matches_yield_no_groups() {
    let pushed = store(true, QueryMode::AdaptivePushdown);
    let out = pushed
        .query("SELECT cat, count(*) FROM t WHERE k < -1 GROUP BY cat")
        .unwrap();
    assert_eq!(out.result.row_count, 0);
    assert_eq!(out.result.columns.len(), 2);
    assert_eq!(out.result.columns[0].1.len(), 0);
    assert_eq!(out.result.columns[1].1.len(), 0);
}

/// The pushdown path advances the grouped-aggregation metrics.
#[test]
fn grouped_metrics_counters_advance() {
    let pushed = store(true, QueryMode::AdaptivePushdown);
    pushed
        .query("SELECT cat, count(*), sum(price) FROM t GROUP BY cat")
        .unwrap();
    assert!(pushed.metrics().counter("agg_groups_emitted").get() > 0);
    assert!(pushed.metrics().counter("agg_wire_bytes_saved").get() > 0);
}
