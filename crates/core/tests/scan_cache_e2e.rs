//! End-to-end tests for the encoded-domain scan engine and the node-local
//! chunk cache: repeated queries hit the cache, invalidation fires on
//! delete / scrub-heal / node failure, degraded-mode queries stay correct
//! through the new scan path, and the encoded kernels change no results.

use fusion_core::config::{QueryMode, StoreConfig};
use fusion_core::store::Store;
use fusion_format::prelude::*;

fn test_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("orderkey", LogicalType::Int64),
        Field::new("amount", LogicalType::Float64),
        Field::new("flag", LogicalType::Utf8),
    ]);
    Table::new(
        schema,
        vec![
            ColumnData::Int64(
                (0..rows as i64)
                    .map(|i| i.wrapping_mul(2_654_435_761))
                    .collect(),
            ),
            ColumnData::Float64((0..rows).map(|i| (i % 1000) as f64 + 0.25).collect()),
            ColumnData::Utf8((0..rows).map(|i| ["N", "O", "F"][i % 3].into()).collect()),
        ],
    )
    .unwrap()
}

fn fusion_store(cfg_mut: impl FnOnce(&mut StoreConfig)) -> Store {
    let bytes = write_table(
        &test_table(3000),
        WriteOptions {
            rows_per_group: 500,
        },
    )
    .unwrap();
    let mut cfg = StoreConfig::fusion();
    cfg.overhead_threshold = 0.9;
    cfg.cluster.cost = cfg.cluster.cost.clone().scaled_down(1000.0);
    cfg_mut(&mut cfg);
    let mut store = Store::new(cfg).unwrap();
    store.put("t", bytes).unwrap();
    store
}

const SQL: &str = "SELECT amount FROM t WHERE flag = 'O' AND orderkey >= 0";

#[test]
fn repeated_query_hits_the_cache() {
    let store = fusion_store(|_| {});
    let first = store.query(SQL).unwrap();
    assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
    assert!(
        first.cache_misses > 0,
        "first query must populate the cache"
    );

    let second = store.query(SQL).unwrap();
    assert_eq!(first.result, second.result);
    assert!(second.cache_hits > 0, "repeat query must hit the cache");
    assert_eq!(
        second.cache_misses, 0,
        "repeat query should be fully cached"
    );

    let stats = store.chunk_cache().stats();
    assert!(stats.hits >= second.cache_hits as u64);
    assert!(stats.resident_bytes > 0);
    assert!(stats.entries > 0);
}

#[test]
fn disabled_cache_never_hits() {
    let store = fusion_store(|c| c.chunk_cache_bytes = 0);
    store.query(SQL).unwrap();
    let out = store.query(SQL).unwrap();
    assert_eq!(out.cache_hits, 0);
    assert_eq!(store.chunk_cache().stats().entries, 0);
}

#[test]
fn encoded_scan_toggle_changes_no_results() {
    let on = fusion_store(|_| {});
    let off = fusion_store(|c| c.encoded_scan = false);
    for sql in [
        SQL,
        "SELECT orderkey FROM t WHERE flag != 'N'",
        "SELECT count(*), avg(amount) FROM t WHERE amount < 500.0",
        "SELECT flag FROM t WHERE orderkey < 0 OR amount >= 999.0",
        "SELECT amount FROM t WHERE flag = 'Z'",
    ] {
        let a = on.query(sql).expect(sql);
        let b = off.query(sql).expect(sql);
        assert_eq!(a.result, b.result, "encoded vs scalar mismatch: {sql}");
        assert_eq!(a.selectivity, b.selectivity, "{sql}");
    }
}

#[test]
fn degraded_mode_stays_correct_through_the_scan_path() {
    let mut store = fusion_store(|_| {});
    let healthy = store.query(SQL).unwrap();

    store.fail_node(0).unwrap();
    assert_eq!(
        store.chunk_cache().stats().entries,
        0,
        "node failure must flush the cache"
    );
    let degraded = store.query(SQL).unwrap();
    assert_eq!(healthy.result, degraded.result, "degraded result drifted");

    // Baseline agrees too (its path also crosses the failed node).
    let bytes = write_table(
        &test_table(3000),
        WriteOptions {
            rows_per_group: 500,
        },
    )
    .unwrap();
    let mut bcfg = StoreConfig::baseline().with_block_size(16 << 10);
    bcfg.query_mode = QueryMode::Reassemble;
    bcfg.overhead_threshold = 0.9;
    bcfg.cluster.cost = bcfg.cluster.cost.clone().scaled_down(1000.0);
    let mut baseline = Store::new(bcfg).unwrap();
    baseline.put("t", bytes).unwrap();
    baseline.fail_node(0).unwrap();
    let b = baseline.query(SQL).unwrap();
    assert_eq!(healthy.result, b.result, "baseline degraded drifted");

    // Recovery flushes again and the store serves from a cold cache.
    store.recover_node(0).unwrap();
    assert_eq!(store.chunk_cache().stats().entries, 0);
    let recovered = store.query(SQL).unwrap();
    assert_eq!(healthy.result, recovered.result);
    assert_eq!(recovered.cache_hits, 0, "cache must be cold after recovery");
}

/// Counter conservation: `pruned + hits + misses == considered` must hold
/// for every executor in every mode — healthy, degraded, encoded scan on
/// or off, cache enabled or disabled.
#[test]
fn chunk_accounting_conserves_in_every_mode() {
    let assert_conserved = |out: &fusion_core::query::QueryOutput, what: &str| {
        assert_eq!(
            out.pruned_chunks + out.cache_hits + out.cache_misses,
            out.chunks_considered,
            "conservation violated ({what}): pruned={} hits={} misses={} considered={}",
            out.pruned_chunks,
            out.cache_hits,
            out.cache_misses,
            out.chunks_considered
        );
        assert!(
            out.chunks_considered > 0,
            "query touched no chunks ({what})"
        );
    };
    let queries = [
        SQL,
        "SELECT count(*), avg(amount) FROM t WHERE amount < 500.0",
        "SELECT amount FROM t WHERE orderkey >= 0",
        "SELECT amount FROM t WHERE flag = 'Z'",
    ];

    for encoded in [true, false] {
        for cache in [true, false] {
            let mut store = fusion_store(|c| {
                c.encoded_scan = encoded;
                if !cache {
                    c.chunk_cache_bytes = 0;
                }
            });
            for sql in queries {
                let label = format!("fusion encoded={encoded} cache={cache} healthy: {sql}");
                assert_conserved(&store.query(sql).expect(sql), &label);
                // Repeat so the second run exercises the hit path.
                assert_conserved(&store.query(sql).expect(sql), &label);
            }
            store.fail_node(0).unwrap();
            for sql in queries {
                let label = format!("fusion encoded={encoded} cache={cache} degraded: {sql}");
                assert_conserved(&store.query(sql).expect(sql), &label);
            }
        }
    }

    // Baseline: every fetched chunk is a data-plane miss; the invariant
    // holds with zero hits, healthy and degraded.
    let bytes = write_table(
        &test_table(3000),
        WriteOptions {
            rows_per_group: 500,
        },
    )
    .unwrap();
    let mut bcfg = StoreConfig::baseline().with_block_size(16 << 10);
    bcfg.overhead_threshold = 0.9;
    bcfg.cluster.cost = bcfg.cluster.cost.clone().scaled_down(1000.0);
    let mut baseline = Store::new(bcfg).unwrap();
    baseline.put("t", bytes).unwrap();
    for sql in queries {
        let out = baseline.query(sql).expect(sql);
        assert_eq!(out.cache_hits, 0, "baseline has no node caches");
        assert_conserved(&out, &format!("baseline healthy: {sql}"));
    }
    baseline.fail_node(0).unwrap();
    for sql in queries {
        assert_conserved(
            &baseline.query(sql).expect(sql),
            &format!("baseline degraded: {sql}"),
        );
    }
}

/// The observability flag gates trace recording: off yields an empty
/// no-op tree, on yields a span tree covering the executor stages.
#[test]
fn observability_flag_gates_trace_recording() {
    let off = fusion_store(|_| {});
    let out = off.query(SQL).unwrap();
    assert!(!out.trace.enabled());
    assert!(out.trace.root().children.is_empty(), "no-op trace recorded");

    let mut on = fusion_store(|c| c.observability = true);
    let out = on.query(SQL).unwrap();
    assert!(out.trace.enabled());
    let names: Vec<&str> = out
        .trace
        .root()
        .children
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert!(names.contains(&"filter_stage"), "spans: {names:?}");
    assert!(names.contains(&"projection_stage"), "spans: {names:?}");
    let filter =
        &out.trace.root().children[names.iter().position(|n| *n == "filter_stage").unwrap()];
    let kids: Vec<&str> = filter.children.iter().map(|s| s.name.as_str()).collect();
    assert!(kids.contains(&"stats_prune"), "filter children: {kids:?}");
    assert!(kids.contains(&"cache_lookup"), "filter children: {kids:?}");
    assert!(kids.contains(&"shard_read"), "filter children: {kids:?}");

    // Degraded queries grow degraded-reconstruct spans under the filter
    // stage, and the JSON export round-trips the tree shape.
    on.fail_node(0).unwrap();
    let degraded = on.query(SQL).unwrap();
    fn has_degraded(span: &fusion_obs::trace::Span) -> bool {
        span.name == "degraded_reconstruct" || span.children.iter().any(has_degraded)
    }
    assert!(
        has_degraded(degraded.trace.root()),
        "degraded query must record reconstruct spans"
    );
    assert!(degraded.trace.to_json().contains("degraded_reconstruct"));
}

#[test]
fn delete_invalidates_cached_chunks() {
    let mut store = fusion_store(|_| {});
    store.query(SQL).unwrap();
    assert!(store.chunk_cache().stats().entries > 0);
    store.delete("t").unwrap();
    assert_eq!(
        store.chunk_cache().stats().entries,
        0,
        "delete must drop the object's cached chunks"
    );
}

#[test]
fn scrub_heal_invalidates_cached_chunks() {
    let mut store = fusion_store(|_| {});
    store.query(SQL).unwrap();
    let before = store.chunk_cache().stats();
    assert!(before.entries > 0);

    // A clean scrub repairs nothing and leaves the cache alone.
    let clean = store.scrub();
    assert!(clean.is_clean());
    assert_eq!(clean.blocks_repaired, 0);
    assert_eq!(store.chunk_cache().stats().entries, before.entries);

    // Drop one block on an alive node; scrub heals it and must flush the
    // object's cached views.
    let meta = store.object("t").unwrap();
    let sp = &meta.placement[0];
    let (node, block) = (sp.nodes[0], sp.block_ids[0]);
    store.blocks_mut().delete(node, block).unwrap();
    let healed = store.scrub();
    assert!(healed.blocks_repaired > 0, "scrub should have repaired");
    assert_eq!(
        store.chunk_cache().stats().entries,
        0,
        "scrub repairs must invalidate cached chunks"
    );

    // Queries after the heal are still correct.
    let out = store.query(SQL).unwrap();
    assert_eq!(out.cache_hits, 0);
    assert!(out.cache_misses > 0);
}
