//! Tests for the aggregate-pushdown extension (the paper's §5 future
//! work): results must match the coordinator-side aggregation paths, and
//! traffic must shrink dramatically for aggregate-only queries.

use fusion_core::config::{QueryMode, StoreConfig};
use fusion_core::store::Store;
use fusion_format::prelude::*;

fn table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("k", LogicalType::Int64),
        Field::new("price", LogicalType::Float64),
        Field::new("cat", LogicalType::Utf8),
    ]);
    Table::new(
        schema,
        vec![
            ColumnData::Int64(
                (0..rows as i64)
                    .map(|i| i.wrapping_mul(48_271) % 10_000)
                    .collect(),
            ),
            ColumnData::Float64((0..rows).map(|i| (i % 977) as f64 * 1.5 + 0.25).collect()),
            ColumnData::Utf8(
                (0..rows)
                    .map(|i| ["a", "b", "c", "d"][i % 4].into())
                    .collect(),
            ),
        ],
    )
    .unwrap()
}

fn store(agg_pd: bool, mode: QueryMode) -> Store {
    let bytes = write_table(
        &table(4000),
        WriteOptions {
            rows_per_group: 800,
        },
    )
    .unwrap();
    let mut cfg = StoreConfig::fusion().with_aggregate_pushdown(agg_pd);
    cfg.query_mode = mode;
    cfg.overhead_threshold = 0.9;
    cfg.cluster.cost = cfg.cluster.cost.clone().scaled_down(1000.0);
    let mut s = Store::new(cfg).unwrap();
    s.put("t", bytes).unwrap();
    s
}

const AGG_QUERIES: &[&str] = &[
    "SELECT count(*) FROM t WHERE cat = 'a'",
    "SELECT sum(k) FROM t WHERE k < 5000",
    "SELECT min(k), max(k), count(k) FROM t WHERE cat != 'd'",
    "SELECT avg(price), count(*) FROM t WHERE price < 500.0",
    "SELECT min(cat), max(cat) FROM t WHERE k >= 0",
    "SELECT sum(k), avg(k) FROM t",
];

fn values_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
        _ => a == b,
    }
}

#[test]
fn pushed_aggregates_match_coordinator_aggregates() {
    let with = store(true, QueryMode::AdaptivePushdown);
    let without = store(false, QueryMode::AdaptivePushdown);
    let baseline = store(false, QueryMode::Reassemble);
    for sql in AGG_QUERIES {
        let a = with.query(sql).expect(sql);
        let b = without.query(sql).expect(sql);
        let c = baseline.query(sql).expect(sql);
        assert_eq!(a.result.row_count, b.result.row_count, "{sql}");
        assert_eq!(
            a.result.aggregates.len(),
            b.result.aggregates.len(),
            "{sql}"
        );
        for (i, (label, v)) in a.result.aggregates.iter().enumerate() {
            assert_eq!(label, &b.result.aggregates[i].0, "{sql}");
            // Float sums may differ in grouping order only.
            assert!(
                values_close(v, &b.result.aggregates[i].1),
                "{sql}: {label} pushed={v:?} local={:?}",
                b.result.aggregates[i].1
            );
            assert!(
                values_close(v, &c.result.aggregates[i].1),
                "{sql}: {label} pushed={v:?} baseline={:?}",
                c.result.aggregates[i].1
            );
        }
    }
}

#[test]
fn pushed_aggregates_move_fewer_bytes() {
    let with = store(true, QueryMode::AdaptivePushdown);
    let without = store(false, QueryMode::AdaptivePushdown);
    // avg over a poorly-compressible float column with ~50% selectivity:
    // without aggregate pushdown the coordinator must receive either the
    // selected values or the compressed chunks; with it, 24 bytes/chunk.
    let sql = "SELECT avg(price) FROM t WHERE price < 733.0";
    let a = with.query(sql).unwrap();
    let b = without.query(sql).unwrap();
    assert!(
        a.net_bytes * 3 < b.net_bytes,
        "expected large traffic cut: with={} without={}",
        a.net_bytes,
        b.net_bytes
    );
    // And the simulated latency improves too.
    assert!(with.simulate_solo(&a.workflow) <= without.simulate_solo(&b.workflow));
}

#[test]
fn mixed_queries_bypass_aggregate_pushdown() {
    // A query that also projects raw columns cannot use the aggregate
    // fast path; it must still be correct.
    let with = store(true, QueryMode::AdaptivePushdown);
    let without = store(false, QueryMode::AdaptivePushdown);
    let sql = "SELECT cat, count(*) FROM t WHERE k < 100";
    let a = with.query(sql).unwrap();
    let b = without.query(sql).unwrap();
    assert_eq!(a.result, b.result);
    assert!(!a.result.columns.is_empty());
}

#[test]
fn zero_match_aggregates_fall_back() {
    let with = store(true, QueryMode::AdaptivePushdown);
    let without = store(false, QueryMode::AdaptivePushdown);
    let sql = "SELECT count(*), sum(price) FROM t WHERE cat = 'zzz'";
    let a = with.query(sql).unwrap();
    let b = without.query(sql).unwrap();
    assert_eq!(a.result, b.result);
    assert_eq!(a.result.aggregates[0].1, Value::Int(0));
}

#[test]
fn decisions_report_pushed_aggregates() {
    let with = store(true, QueryMode::AdaptivePushdown);
    let out = with
        .query("SELECT avg(price) FROM t WHERE k < 5000")
        .unwrap();
    assert!(!out.decisions.is_empty());
    assert!(out.decisions.iter().all(|d| d.pushed_down));
    // Partials are tiny relative to chunks.
    assert!(out.decisions.iter().all(|d| d.cost_product < 0.5));
}
