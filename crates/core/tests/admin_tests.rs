//! Tests for the management surface: list / head / delete / scrub.

use bytes::Bytes;
use fusion_core::config::StoreConfig;
use fusion_core::store::Store;
use fusion_format::prelude::*;

fn file(rows: usize) -> Vec<u8> {
    let schema = Schema::new(vec![
        Field::new("id", LogicalType::Int64),
        Field::new("tag", LogicalType::Utf8),
    ]);
    let table = Table::new(
        schema,
        vec![
            ColumnData::Int64((0..rows as i64).collect()),
            ColumnData::Utf8((0..rows).map(|i| ["x", "y"][i % 2].into()).collect()),
        ],
    )
    .unwrap();
    write_table(
        &table,
        WriteOptions {
            rows_per_group: rows.div_ceil(4),
        },
    )
    .unwrap()
}

fn store() -> Store {
    let mut cfg = StoreConfig::fusion();
    cfg.overhead_threshold = 0.9;
    Store::new(cfg).unwrap()
}

#[test]
fn list_and_head() {
    let mut s = store();
    s.put("logs/a", file(500)).unwrap();
    s.put("logs/b", file(600)).unwrap();
    s.put("data/c", file(700)).unwrap();
    assert_eq!(
        s.list("logs/"),
        vec!["logs/a".to_string(), "logs/b".to_string()]
    );
    assert_eq!(s.list(""), vec!["data/c", "logs/a", "logs/b"]);
    assert!(s.list("nope/").is_empty());

    let h = s.head("logs/a").unwrap();
    assert_eq!(h.name, "logs/a");
    assert!(h.analytics);
    assert_eq!(h.chunks, 8); // 4 row groups x 2 columns
    assert_eq!(h.layout, "fac");
    assert!(s.head("ghost").is_err());
}

#[test]
fn delete_frees_blocks() {
    let mut s = store();
    s.put("a", file(800)).unwrap();
    s.put("b", file(800)).unwrap();
    let before = s.stored_bytes();
    s.delete("a").unwrap();
    assert!(s.stored_bytes() < before);
    assert!(s.get("a", 0, 1).is_err());
    assert!(s.object("a").is_err());
    // The other object is untouched.
    assert!(s.get("b", 0, 100).is_ok());
    // Double delete fails cleanly.
    assert!(s.delete("a").is_err());
}

#[test]
fn delete_with_failed_node_skips_it() {
    let mut s = store();
    s.put("a", file(800)).unwrap();
    s.fail_node(3).unwrap();
    s.delete("a").unwrap();
    assert!(s.object("a").is_err());
}

#[test]
fn scrub_clean_store() {
    let mut s = store();
    s.put("a", file(1000)).unwrap();
    s.put("b", file(500)).unwrap();
    let r = s.scrub();
    assert!(r.is_clean());
    assert!(r.stripes_ok > 0);
    assert_eq!(r.stripes_degraded, 0);
}

#[test]
fn scrub_counts_degraded_stripes() {
    let mut s = store();
    s.put("a", file(1000)).unwrap();
    s.fail_node(0).unwrap();
    let r = s.scrub();
    // With 9 nodes and n=9, every stripe touches node 0.
    assert_eq!(r.stripes_ok, 0);
    assert!(r.stripes_degraded > 0);
    assert!(r.is_clean());
    // Recovery restores a clean scrub.
    s.recover_node(0).unwrap();
    let r = s.scrub();
    assert!(r.stripes_degraded == 0 && r.is_clean() && r.stripes_ok > 0);
}

#[test]
fn scrub_detects_silent_corruption() {
    let mut s = store();
    s.put("a", file(1000)).unwrap();
    // Flip a byte of one stored block behind the store's back.
    let meta = s.object("a").unwrap();
    let (node, block) = (meta.placement[0].nodes[2], meta.placement[0].block_ids[2]);
    let original = s.blocks().get(node, block).unwrap();
    let mut tampered = original.to_vec();
    tampered[0] ^= 0xFF;
    s.blocks_mut()
        .put(node, block, Bytes::from(tampered))
        .unwrap();

    let r = s.scrub();
    assert!(!r.is_clean());
    assert_eq!(r.stripes_corrupt, 1);
}

#[test]
fn scrub_repairs_crc_detected_corruption() {
    let mut s = store();
    s.put("a", file(1000)).unwrap();
    let before = s.get("a", 0, 64).unwrap();
    let meta = s.object("a").unwrap().clone();
    let (node, block) = (meta.placement[0].nodes[1], meta.placement[0].block_ids[1]);
    s.blocks_mut().corrupt_block(node, block, 5).unwrap();

    // The data plane flags the bit rot on read — never silent wrong bytes.
    assert!(matches!(
        s.blocks().get(node, block),
        Err(fusion_cluster::store::ClusterError::Corrupt { .. })
    ));

    // Scrub heals it from parity: CRC-detected loss counts as ok, not corrupt.
    let r = s.scrub();
    assert!(r.blocks_repaired >= 1);
    assert!(r.stripes_repaired >= 1);
    assert!(r.is_clean());

    // The block reads again and object contents are intact.
    assert!(s.blocks().get(node, block).is_ok());
    assert_eq!(s.get("a", 0, 64).unwrap(), before);
    let r2 = s.scrub();
    assert!(r2.is_clean() && r2.blocks_repaired == 0 && r2.stripes_degraded == 0);
}

#[test]
fn scrub_localizes_and_repairs_tampered_block() {
    let mut s = store();
    s.put("a", file(1000)).unwrap();
    let meta = s.object("a").unwrap().clone();
    let (node, block) = (meta.placement[0].nodes[2], meta.placement[0].block_ids[2]);
    let original = s.blocks().get(node, block).unwrap();
    let mut tampered = original.to_vec();
    tampered[3] ^= 0x55;
    // A tampered put recomputes the CRC, so only parity can catch it.
    s.blocks_mut()
        .put(node, block, Bytes::from(tampered))
        .unwrap();

    let r = s.scrub();
    // Detection is never silent even though the stripe was healed...
    assert_eq!(r.stripes_corrupt, 1);
    assert_eq!(r.blocks_repaired, 1);
    // ...and the culprit block got its original contents back.
    assert_eq!(s.blocks().get(node, block).unwrap(), original);
    assert!(s.scrub().is_clean());
}
