//! Property tests for failure-domain-aware placement: for any topology,
//! seed, and code, no failure domain may hold more than `tolerance`
//! shards of a stripe, and no domain may hold two shards of the same
//! local group — the invariants that keep a whole-rack outage within
//! what the code guarantees to recover, with cheap local repair intact.

use fusion_cluster::spec::ClusterSpec;
use fusion_cluster::topology::Topology;
use fusion_core::config::{EcConfig, PlacementPolicy, StoreConfig};
use fusion_core::store::Store;
use fusion_format::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn analytics_bytes(rows: usize) -> Vec<u8> {
    let schema = Schema::new(vec![Field::new("x", LogicalType::Int64)]);
    let table = Table::new(schema, vec![ColumnData::Int64((0..rows as i64).collect())]).unwrap();
    write_table(
        &table,
        WriteOptions {
            rows_per_group: 250,
        },
    )
    .unwrap()
}

fn store_on(ec: EcConfig, topo: Topology, seed: u64, placement: PlacementPolicy) -> Store {
    let cfg = StoreConfig::fusion()
        .with_ec(ec)
        .with_cluster(ClusterSpec::with_topology(topo))
        .with_placement(placement)
        .with_seed(seed);
    Store::new(cfg).unwrap()
}

/// Shards per failure domain for one stripe placement.
fn domain_counts(store: &Store, nodes: &[usize]) -> HashMap<usize, usize> {
    let mut counts = HashMap::new();
    for &n in nodes {
        *counts.entry(store.topology().domain_of(n)).or_insert(0) += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two placement invariants hold for every stripe of every
    /// object, for both RS and LRC, over random rack topologies.
    #[test]
    fn domain_aware_placement_respects_invariants(
        seed: u64,
        racks in 4usize..7,
        per_rack in 3usize..6,
        lrc: bool,
        rows in 500usize..2000,
    ) {
        let ec = if lrc { EcConfig::LRC_10_6 } else { EcConfig::rs(9, 6) };
        let topo = Topology::racks(racks * per_rack, racks);
        let mut store = store_on(ec, topo, seed, PlacementPolicy::DomainAware);
        store.put("obj", analytics_bytes(rows)).unwrap();

        let tolerance = store.codec().tolerance();
        let meta = store.object("obj").unwrap();
        for sp in &meta.placement {
            // No domain exceeds the code's loss tolerance.
            for (&d, &c) in &domain_counts(&store, &sp.nodes) {
                prop_assert!(
                    c <= tolerance,
                    "domain {d} holds {c} shards, tolerance {tolerance}"
                );
            }
            // No domain holds two shards of one local group.
            let mut group_domains: Vec<(usize, usize)> = Vec::new();
            for (shard, &node) in sp.nodes.iter().enumerate() {
                if let Some(g) = store.codec().placement_group(shard) {
                    let d = store.topology().domain_of(node);
                    prop_assert!(
                        !group_domains.contains(&(g, d)),
                        "group {g} has two shards in domain {d}"
                    );
                    group_domains.push((g, d));
                }
            }
        }
    }

    /// The deterministic rendezvous policy honors the same PR-6
    /// invariants as the stored-map path, for both RS and LRC, over
    /// random rack topologies — and its placement is a pure function of
    /// `(seed, name, membership)`: two independently built stores agree
    /// on every stripe.
    #[test]
    fn deterministic_placement_respects_invariants_and_is_stable(
        seed: u64,
        racks in 4usize..7,
        per_rack in 3usize..6,
        lrc: bool,
        rows in 500usize..2000,
    ) {
        let ec = if lrc { EcConfig::LRC_10_6 } else { EcConfig::rs(9, 6) };
        let bytes = analytics_bytes(rows);
        let topo = Topology::racks(racks * per_rack, racks);
        let mut store = store_on(ec, topo.clone(), seed, PlacementPolicy::Deterministic);
        store.put("obj", bytes.clone()).unwrap();

        let tolerance = store.codec().tolerance();
        let meta = store.object("obj").unwrap();
        for sp in &meta.placement {
            // Distinct nodes, always.
            let mut uniq = sp.nodes.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), sp.nodes.len());
            // No domain exceeds the code's loss tolerance.
            for (&d, &c) in &domain_counts(&store, &sp.nodes) {
                prop_assert!(
                    c <= tolerance,
                    "domain {} holds {} shards, tolerance {}", d, c, tolerance
                );
            }
            // No domain holds two shards of one local group.
            let mut group_domains: Vec<(usize, usize)> = Vec::new();
            for (shard, &node) in sp.nodes.iter().enumerate() {
                if let Some(g) = store.codec().placement_group(shard) {
                    let d = store.topology().domain_of(node);
                    prop_assert!(
                        !group_domains.contains(&(g, d)),
                        "group {} has two shards in domain {}", g, d
                    );
                    group_domains.push((g, d));
                }
            }
        }

        // Byte stability: an independently built store with the same
        // seed and membership reproduces every placement and the same
        // materialized location map.
        let mut twin = store_on(ec, topo, seed, PlacementPolicy::Deterministic);
        twin.put("obj", bytes).unwrap();
        let tm = twin.object("obj").unwrap();
        for (sp, tp) in meta.placement.iter().zip(&tm.placement) {
            prop_assert_eq!(&sp.nodes, &tp.nodes);
        }
        prop_assert_eq!(
            store.location_map("obj").unwrap(),
            twin.location_map("obj").unwrap()
        );
    }

    /// On a flat topology the domain-aware greedy pass must degenerate
    /// to exactly the naive shuffle-truncate: same seed, same placement.
    #[test]
    fn flat_topology_matches_naive_placement(seed: u64, rows in 500usize..1500) {
        let bytes = analytics_bytes(rows);
        let ec = EcConfig::rs(9, 6);
        let mut aware = store_on(ec, Topology::flat(9), seed, PlacementPolicy::DomainAware);
        let mut naive = store_on(ec, Topology::flat(9), seed, PlacementPolicy::Naive);
        aware.put("obj", bytes.clone()).unwrap();
        naive.put("obj", bytes).unwrap();
        let pa: Vec<Vec<usize>> = aware.object("obj").unwrap().placement
            .iter().map(|sp| sp.nodes.clone()).collect();
        let pn: Vec<Vec<usize>> = naive.object("obj").unwrap().placement
            .iter().map(|sp| sp.nodes.clone()).collect();
        prop_assert_eq!(pa, pn);
    }
}

/// A whole-rack outage stays readable under domain-aware placement;
/// naive placement demonstrably violates the invariant for some seed
/// (which is why the experiment's naive arm loses data).
#[test]
fn rack_outage_readable_only_with_domain_awareness() {
    let bytes = analytics_bytes(2000);
    let topo = Topology::racks(16, 4);
    let ec = EcConfig::LRC_10_6;

    // Domain-aware: fail every node of rack 0; every byte still reads.
    let mut store = store_on(ec, topo.clone(), 11, PlacementPolicy::DomainAware);
    store.put("obj", bytes.clone()).unwrap();
    for node in topo.nodes_in(0) {
        store.fail_node(node).unwrap();
    }
    assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);

    // Naive: some seed places more shards in one rack than the code
    // tolerates — the invariant the greedy pass exists to prevent.
    let violated = (0..64u64).any(|seed| {
        let mut store = store_on(ec, topo.clone(), seed, PlacementPolicy::Naive);
        store.put("obj", bytes.clone()).unwrap();
        let tolerance = store.codec().tolerance();
        let meta = store.object("obj").unwrap();
        meta.placement.iter().any(|sp| {
            domain_counts(&store, &sp.nodes)
                .values()
                .any(|&c| c > tolerance)
        })
    });
    assert!(
        violated,
        "naive placement never overloaded a rack in 64 seeds"
    );
}
