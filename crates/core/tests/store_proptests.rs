//! Property tests over the whole store: arbitrary tables must roundtrip
//! through put/get under every layout policy, survive any tolerable
//! failure pattern, and give identical query answers across executors.

use fusion_cluster::fault::{AppliedFault, FaultInjector, FaultKind, FaultSchedule};
use fusion_cluster::time::Nanos;
use fusion_core::config::{LayoutPolicy, QueryMode, StoreConfig};
use fusion_core::store::Store;
use fusion_format::prelude::*;
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    (50usize..400).prop_flat_map(|rows| {
        (
            prop::collection::vec(-1000i64..1000, rows),
            prop::collection::vec(0u8..5, rows),
            prop::collection::vec(-1e3f64..1e3, rows),
        )
            .prop_map(|(ints, tags, floats)| {
                let schema = Schema::new(vec![
                    Field::new("n", LogicalType::Int64),
                    Field::new("tag", LogicalType::Utf8),
                    Field::new("x", LogicalType::Float64),
                ]);
                Table::new(
                    schema,
                    vec![
                        ColumnData::Int64(ints),
                        ColumnData::Utf8(tags.into_iter().map(|t| format!("t{t}")).collect()),
                        ColumnData::Float64(floats),
                    ],
                )
                .expect("consistent")
            })
    })
}

fn mk_store(layout: LayoutPolicy, mode: QueryMode, seed: u64) -> Store {
    let mut cfg = StoreConfig::fusion().with_seed(seed).with_block_size(2048);
    cfg.layout = layout;
    cfg.query_mode = mode;
    cfg.overhead_threshold = 0.95;
    Store::new(cfg).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn put_get_roundtrip_all_layouts(
        table in arb_table(),
        per_group in 20usize..120,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: per_group }).unwrap();
        for layout in [LayoutPolicy::Fixed, LayoutPolicy::Padding, LayoutPolicy::Fac] {
            let mut store = mk_store(layout, QueryMode::AdaptivePushdown, seed);
            store.put("o", bytes.clone()).unwrap();
            prop_assert_eq!(&store.get("o", 0, bytes.len() as u64).unwrap(), &bytes);
            // A few random-ish sub-ranges.
            let len = bytes.len() as u64;
            for (a, b) in [(0, len / 3), (len / 2, len / 4), (len - 1, 1)] {
                let b = b.min(len - a);
                prop_assert_eq!(
                    &store.get("o", a, b).unwrap()[..],
                    &bytes[a as usize..(a + b) as usize]
                );
            }
        }
    }

    #[test]
    fn degraded_reads_under_any_tolerable_failure(
        table in arb_table(),
        failures in prop::collection::btree_set(0usize..9, 1..=3),
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let mut store = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        store.put("o", bytes.clone()).unwrap();
        for &f in &failures {
            store.fail_node(f).unwrap();
        }
        prop_assert_eq!(store.get("o", 0, bytes.len() as u64).unwrap(), bytes);
    }

    #[test]
    fn recovery_is_complete(
        table in arb_table(),
        node in 0usize..9,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let mut store = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        store.put("o", bytes.clone()).unwrap();
        store.fail_node(node).unwrap();
        store.recover_node(node).unwrap();
        // Every block is present again and parity verifies.
        let scrub = store.scrub();
        prop_assert_eq!(scrub.stripes_degraded, 0);
        prop_assert!(scrub.is_clean());
        prop_assert_eq!(store.get("o", 0, bytes.len() as u64).unwrap(), bytes);
    }

    #[test]
    fn executors_agree_on_random_predicates(
        table in arb_table(),
        cutoff in -1000i64..1000,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let mut fusion = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        fusion.put("o", bytes.clone()).unwrap();
        let mut baseline = mk_store(LayoutPolicy::Fixed, QueryMode::Reassemble, seed);
        baseline.put("o", bytes).unwrap();
        let sql = format!("SELECT n, tag FROM o WHERE n < {cutoff}");
        let a = fusion.query(&sql).unwrap();
        let b = baseline.query(&sql).unwrap();
        prop_assert_eq!(&a.result, &b.result);
        // And against a brute-force oracle.
        let ns = table.column_by_name("n").unwrap().as_int64().unwrap();
        let expect = ns.iter().filter(|&&v| v < cutoff).count();
        prop_assert_eq!(a.result.row_count, expect);
    }

    #[test]
    fn seeded_fault_lifecycle_preserves_data(
        table in arb_table(),
        fault_seed: u64,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let mut store = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        store.put("o", bytes.clone()).unwrap();

        let horizon = Nanos::from_micros(10_000);
        let mut inj = FaultInjector::from_seed(fault_seed, 9, 3, horizon);
        // Step through every fault and scheduled-revival instant so the
        // prompt repair below keeps cumulative block loss within the
        // m = 3 shards RS(9,6) tolerates.
        let mut times: Vec<Nanos> = Vec::new();
        for ev in inj.schedule().events() {
            times.push(ev.at);
            if let FaultKind::Transient { down_for } = ev.kind {
                times.push(ev.at + down_for);
            }
        }
        times.sort_unstable();
        times.dedup();

        let mut corrupt = std::collections::HashSet::new();
        let mut pending: Vec<usize> = Vec::new();
        for &t in &times {
            for f in store.apply_faults(&mut inj, t) {
                match f {
                    AppliedFault::Revived { node, .. } => pending.push(node),
                    AppliedFault::Corrupted { node, block, .. } => {
                        corrupt.insert((node, block));
                    }
                    // A crash wipes the node, rot included.
                    AppliedFault::Crashed { node, .. } => corrupt.retain(|&(n, _)| n != node),
                    AppliedFault::Slowed { .. } => {}
                }
            }
            // Prompt repair: rebuild every node that came back empty.
            pending.retain(|&n| store.recover_node(n).is_err());
            let down = (0..9).filter(|&n| !store.blocks().is_alive(n)).count();
            // Scrub the rot away once no stripe is degraded (scrub leaves
            // degraded stripes for recover_node).
            if !corrupt.is_empty() && down == 0 && pending.is_empty() {
                store.scrub();
                corrupt.clear();
            }
            // Whenever cumulative loss is within tolerance the object
            // must read back byte-identical, degraded or not.
            if down + pending.len() + corrupt.len() <= 3 {
                prop_assert_eq!(&store.get("o", 0, bytes.len() as u64).unwrap(), &bytes);
            }
        }
        prop_assert!(inj.exhausted());
        pending.retain(|&n| store.recover_node(n).is_err());
        prop_assert!(pending.is_empty());
        store.scrub();
        let r = store.scrub();
        prop_assert!(r.is_clean());
        prop_assert_eq!(r.stripes_degraded, 0);
        prop_assert_eq!(&store.get("o", 0, bytes.len() as u64).unwrap(), &bytes);
    }

    #[test]
    fn degraded_executors_agree_with_healthy(
        table in arb_table(),
        failures in prop::collection::btree_set(0usize..9, 1..=3),
        nth in 0usize..64,
        cutoff in -1000i64..1000,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let sql = format!("SELECT n, tag FROM o WHERE n < {cutoff}");
        let mut healthy = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        healthy.put("o", bytes.clone()).unwrap();
        let want = healthy.query(&sql).unwrap().result;

        // Crash up to m nodes; add one silent corruption on a survivor
        // when there is loss budget left (every stripe spans all nine
        // nodes, so a corrupt block on top of three down nodes would
        // exceed what RS(9,6) can rebuild).
        let mut schedule = FaultSchedule::new();
        for (i, &n) in failures.iter().enumerate() {
            schedule = schedule.crash(Nanos(10 + i as u64), n);
        }
        if failures.len() < 3 {
            let survivor = (0..9).find(|n| !failures.contains(n)).expect("nodes left");
            schedule = schedule.corrupt(Nanos(100), survivor, nth);
        }

        for (layout, mode) in [
            (LayoutPolicy::Fac, QueryMode::AdaptivePushdown),
            (LayoutPolicy::Fixed, QueryMode::Reassemble),
        ] {
            let mut store = mk_store(layout, mode, seed);
            store.put("o", bytes.clone()).unwrap();
            let mut inj = FaultInjector::new(schedule.clone());
            store.apply_faults(&mut inj, Nanos(1_000));
            // Degraded reads and queries stay byte-identical to healthy.
            prop_assert_eq!(&store.get("o", 0, bytes.len() as u64).unwrap(), &bytes);
            prop_assert_eq!(&store.query(&sql).unwrap().result, &want);
            // Repair: revive + rebuild the crashed nodes, scrub the rot.
            for &n in &failures {
                store.recover_node(n).unwrap();
            }
            let r = store.scrub();
            prop_assert!(r.is_clean());
            prop_assert_eq!(r.stripes_degraded, 0);
            prop_assert_eq!(&store.get("o", 0, bytes.len() as u64).unwrap(), &bytes);
        }
    }

    #[test]
    fn fac_layout_invariants_hold_for_any_table(
        table in arb_table(),
        per_group in 10usize..100,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: per_group }).unwrap();
        let mut store = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        store.put("o", bytes.clone()).unwrap();
        let meta = store.object("o").unwrap();
        if meta.policy_used == "fac" {
            for c in 0..meta.num_chunks() {
                prop_assert_eq!(meta.chunk_fragments(c).len(), 1);
            }
        }
        // The layout always tiles the object exactly.
        let covered: u64 = meta.extents().iter().map(|e| e.len()).sum();
        prop_assert_eq!(covered, bytes.len() as u64);
    }
}
