//! Property tests over the whole store: arbitrary tables must roundtrip
//! through put/get under every layout policy, survive any tolerable
//! failure pattern, and give identical query answers across executors.

use fusion_core::config::{LayoutPolicy, QueryMode, StoreConfig};
use fusion_core::store::Store;
use fusion_format::prelude::*;
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    (50usize..400).prop_flat_map(|rows| {
        (
            prop::collection::vec(-1000i64..1000, rows),
            prop::collection::vec(0u8..5, rows),
            prop::collection::vec(-1e3f64..1e3, rows),
        )
            .prop_map(|(ints, tags, floats)| {
                let schema = Schema::new(vec![
                    Field::new("n", LogicalType::Int64),
                    Field::new("tag", LogicalType::Utf8),
                    Field::new("x", LogicalType::Float64),
                ]);
                Table::new(
                    schema,
                    vec![
                        ColumnData::Int64(ints),
                        ColumnData::Utf8(
                            tags.into_iter().map(|t| format!("t{t}")).collect(),
                        ),
                        ColumnData::Float64(floats),
                    ],
                )
                .expect("consistent")
            })
    })
}

fn mk_store(layout: LayoutPolicy, mode: QueryMode, seed: u64) -> Store {
    let mut cfg = StoreConfig::fusion().with_seed(seed).with_block_size(2048);
    cfg.layout = layout;
    cfg.query_mode = mode;
    cfg.overhead_threshold = 0.95;
    Store::new(cfg).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn put_get_roundtrip_all_layouts(
        table in arb_table(),
        per_group in 20usize..120,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: per_group }).unwrap();
        for layout in [LayoutPolicy::Fixed, LayoutPolicy::Padding, LayoutPolicy::Fac] {
            let mut store = mk_store(layout, QueryMode::AdaptivePushdown, seed);
            store.put("o", bytes.clone()).unwrap();
            prop_assert_eq!(&store.get("o", 0, bytes.len() as u64).unwrap(), &bytes);
            // A few random-ish sub-ranges.
            let len = bytes.len() as u64;
            for (a, b) in [(0, len / 3), (len / 2, len / 4), (len - 1, 1)] {
                let b = b.min(len - a);
                prop_assert_eq!(
                    &store.get("o", a, b).unwrap()[..],
                    &bytes[a as usize..(a + b) as usize]
                );
            }
        }
    }

    #[test]
    fn degraded_reads_under_any_tolerable_failure(
        table in arb_table(),
        failures in prop::collection::btree_set(0usize..9, 1..=3),
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let mut store = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        store.put("o", bytes.clone()).unwrap();
        for &f in &failures {
            store.fail_node(f).unwrap();
        }
        prop_assert_eq!(store.get("o", 0, bytes.len() as u64).unwrap(), bytes);
    }

    #[test]
    fn recovery_is_complete(
        table in arb_table(),
        node in 0usize..9,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let mut store = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        store.put("o", bytes.clone()).unwrap();
        store.fail_node(node).unwrap();
        store.recover_node(node).unwrap();
        // Every block is present again and parity verifies.
        let scrub = store.scrub();
        prop_assert_eq!(scrub.stripes_degraded, 0);
        prop_assert!(scrub.is_clean());
        prop_assert_eq!(store.get("o", 0, bytes.len() as u64).unwrap(), bytes);
    }

    #[test]
    fn executors_agree_on_random_predicates(
        table in arb_table(),
        cutoff in -1000i64..1000,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: 64 }).unwrap();
        let mut fusion = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        fusion.put("o", bytes.clone()).unwrap();
        let mut baseline = mk_store(LayoutPolicy::Fixed, QueryMode::Reassemble, seed);
        baseline.put("o", bytes).unwrap();
        let sql = format!("SELECT n, tag FROM o WHERE n < {cutoff}");
        let a = fusion.query(&sql).unwrap();
        let b = baseline.query(&sql).unwrap();
        prop_assert_eq!(&a.result, &b.result);
        // And against a brute-force oracle.
        let ns = table.column_by_name("n").unwrap().as_int64().unwrap();
        let expect = ns.iter().filter(|&&v| v < cutoff).count();
        prop_assert_eq!(a.result.row_count, expect);
    }

    #[test]
    fn fac_layout_invariants_hold_for_any_table(
        table in arb_table(),
        per_group in 10usize..100,
        seed: u64,
    ) {
        let bytes = write_table(&table, WriteOptions { rows_per_group: per_group }).unwrap();
        let mut store = mk_store(LayoutPolicy::Fac, QueryMode::AdaptivePushdown, seed);
        store.put("o", bytes.clone()).unwrap();
        let meta = store.object("o").unwrap();
        if meta.policy_used == "fac" {
            for c in 0..meta.num_chunks() {
                prop_assert_eq!(meta.chunk_fragments(c).len(), 1);
            }
        }
        // The layout always tiles the object exactly.
        let covered: u64 = meta.extents().iter().map(|e| e.len()).sum();
        prop_assert_eq!(covered, bytes.len() as u64);
    }
}
