//! End-to-end query tests: Fusion vs baseline result parity, pushdown
//! decisions, pruning, selectivity, and traffic accounting.

use fusion_core::config::{QueryMode, StoreConfig};
use fusion_core::store::Store;
use fusion_format::prelude::*;

/// A small synthetic "lineitem-like" table: one well-compressed flag
/// column, one poorly-compressed key column, a float amount, and a date.
fn test_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("orderkey", LogicalType::Int64),
        Field::new("amount", LogicalType::Float64),
        Field::new("flag", LogicalType::Utf8),
        Field::new("shipdate", LogicalType::Date),
    ]);
    Table::new(
        schema,
        vec![
            ColumnData::Int64(
                (0..rows as i64)
                    .map(|i| i.wrapping_mul(2_654_435_761))
                    .collect(),
            ),
            ColumnData::Float64((0..rows).map(|i| (i % 1000) as f64 + 0.25).collect()),
            ColumnData::Utf8((0..rows).map(|i| ["N", "O", "F"][i % 3].into()).collect()),
            ColumnData::Int64((0..rows).map(|i| 9_000 + (i % 2500) as i64).collect()),
        ],
    )
    .unwrap()
}

fn store_with(mode: QueryMode, table: &Table, per_group: usize) -> Store {
    let bytes = write_table(
        table,
        WriteOptions {
            rows_per_group: per_group,
        },
    )
    .unwrap();
    let mut cfg = match mode {
        QueryMode::Reassemble => StoreConfig::baseline().with_block_size(16 << 10),
        _ => StoreConfig::fusion(),
    };
    cfg.query_mode = mode;
    cfg.overhead_threshold = 0.9; // small test files have few chunks
                                  // Scale the cost model as the bench harness does: these tables are
                                  // ~1000x smaller than production files, so throughput rates shrink to
                                  // keep fixed costs (RPC, disk access) in proportion.
    cfg.cluster.cost = cfg.cluster.cost.clone().scaled_down(1000.0);
    let mut store = Store::new(cfg).unwrap();
    store.put("t", bytes).unwrap();
    store
}

const QUERIES: &[&str] = &[
    "SELECT orderkey FROM t WHERE flag = 'O'",
    "SELECT amount FROM t WHERE orderkey >= 0 AND amount < 10.0",
    "SELECT flag, amount FROM t WHERE shipdate < '1995-01-01'",
    "SELECT count(*) FROM t WHERE flag != 'N'",
    "SELECT avg(amount), count(*) FROM t WHERE amount >= 500.25",
    "SELECT orderkey FROM t",
    "SELECT flag FROM t WHERE flag = 'Z'", // zero matches
    "SELECT sum(orderkey) FROM t WHERE orderkey < 0 OR flag = 'F'",
    "SELECT min(shipdate), max(shipdate) FROM t WHERE NOT flag = 'O'",
];

#[test]
fn fusion_and_baseline_agree_on_all_queries() {
    let table = test_table(3000);
    let fusion = store_with(QueryMode::AdaptivePushdown, &table, 500);
    let baseline = store_with(QueryMode::Reassemble, &table, 500);
    let always = store_with(QueryMode::AlwaysPushdown, &table, 500);
    for sql in QUERIES {
        let a = fusion.query(sql).expect(sql);
        let b = baseline.query(sql).expect(sql);
        let c = always.query(sql).expect(sql);
        assert_eq!(a.result, b.result, "fusion vs baseline mismatch: {sql}");
        assert_eq!(a.result, c.result, "adaptive vs always mismatch: {sql}");
        assert!((a.selectivity - b.selectivity).abs() < 1e-12, "{sql}");
    }
}

#[test]
fn results_match_brute_force() {
    let table = test_table(2000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 512);
    let out = store
        .query("SELECT amount FROM t WHERE flag = 'O'")
        .unwrap();
    // Brute force over the in-memory table.
    let flags = table.column_by_name("flag").unwrap().as_utf8().unwrap();
    let amounts = table
        .column_by_name("amount")
        .unwrap()
        .as_float64()
        .unwrap();
    let expect: Vec<f64> = flags
        .iter()
        .zip(amounts)
        .filter(|(f, _)| f.as_str() == "O")
        .map(|(_, &a)| a)
        .collect();
    assert_eq!(out.result.row_count, expect.len());
    assert_eq!(out.result.columns[0].1, ColumnData::Float64(expect));
}

#[test]
fn aggregates_match_brute_force() {
    let table = test_table(2000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 512);
    let out = store
        .query("SELECT count(*), avg(amount) FROM t WHERE amount < 100.0")
        .unwrap();
    let amounts = table
        .column_by_name("amount")
        .unwrap()
        .as_float64()
        .unwrap();
    let selected: Vec<f64> = amounts.iter().copied().filter(|&a| a < 100.0).collect();
    assert_eq!(
        out.result.aggregates[0].1,
        Value::Int(selected.len() as i64)
    );
    match out.result.aggregates[1].1 {
        Value::Float(avg) => {
            let expect = selected.iter().sum::<f64>() / selected.len() as f64;
            assert!((avg - expect).abs() < 1e-9);
        }
        ref other => panic!("expected float avg, got {other:?}"),
    }
}

#[test]
fn selectivity_is_exact() {
    let table = test_table(3000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 750);
    let out = store
        .query("SELECT orderkey FROM t WHERE flag = 'N'")
        .unwrap();
    assert!((out.selectivity - 1.0 / 3.0).abs() < 0.01);
    let out = store
        .query("SELECT orderkey FROM t WHERE flag = 'Z'")
        .unwrap();
    assert_eq!(out.selectivity, 0.0);
    assert_eq!(out.result.row_count, 0);
}

#[test]
fn cost_equation_disables_pushdown_for_compressed_high_selectivity() {
    let table = test_table(4000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 1000);
    // flag is 3-valued and dictionary-encoded: compressibility is huge.
    // Selecting ~2/3 of rows makes selectivity × compressibility >> 1, so
    // projecting `flag` must NOT be pushed down.
    let out = store.query("SELECT flag FROM t WHERE flag != 'N'").unwrap();
    let flag_col = 2;
    let flag_decisions: Vec<_> = out
        .decisions
        .iter()
        .filter(|d| d.column == flag_col)
        .collect();
    assert!(!flag_decisions.is_empty());
    for d in &flag_decisions {
        assert!(d.cost_product > 1.0, "product {}", d.cost_product);
        assert!(
            !d.pushed_down,
            "chunk rg={} should not be pushed",
            d.row_group
        );
    }

    // orderkey is nearly incompressible: with ~1/3 selectivity the
    // product stays < 1 and pushdown stays on.
    let out = store
        .query("SELECT orderkey FROM t WHERE flag = 'N'")
        .unwrap();
    let ok_decisions: Vec<_> = out.decisions.iter().filter(|d| d.column == 0).collect();
    assert!(!ok_decisions.is_empty());
    for d in &ok_decisions {
        assert!(
            d.pushed_down,
            "orderkey rg={} should be pushed",
            d.row_group
        );
    }
}

#[test]
fn always_pushdown_ignores_cost_equation() {
    let table = test_table(4000);
    let store = store_with(QueryMode::AlwaysPushdown, &table, 1000);
    let out = store.query("SELECT flag FROM t WHERE flag != 'N'").unwrap();
    assert!(out.decisions.iter().all(|d| d.pushed_down));
}

#[test]
fn fusion_moves_fewer_bytes_on_selective_queries() {
    let table = test_table(6000);
    let fusion = store_with(QueryMode::AdaptivePushdown, &table, 1000);
    let baseline = store_with(QueryMode::Reassemble, &table, 1000);
    // ~0.1% selectivity on the incompressible key column.
    let sql = "SELECT orderkey, amount FROM t WHERE amount < 1.0";
    let f = fusion.query(sql).unwrap();
    let b = baseline.query(sql).unwrap();
    assert_eq!(f.result, b.result);
    assert!(
        f.net_bytes < b.net_bytes,
        "fusion {} >= baseline {}",
        f.net_bytes,
        b.net_bytes
    );
}

#[test]
fn footer_pruning_skips_chunks() {
    let table = test_table(4000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 500);
    // shipdate spans 9000..11500 across row groups of 500 rows; a very
    // early cutoff must prune most row groups.
    let out = store
        .query("SELECT orderkey FROM t WHERE shipdate < '1994-09-01'")
        .unwrap();
    assert!(out.pruned_chunks > 0, "expected pruned chunks");
    // And the result is still correct.
    let dates = table
        .column_by_name("shipdate")
        .unwrap()
        .as_int64()
        .unwrap();
    let cutoff = fusion_sql::date::parse_date("1994-09-01").unwrap();
    let expect = dates.iter().filter(|&&d| d < cutoff).count();
    assert_eq!(out.result.row_count, expect);
}

#[test]
fn simulated_latency_is_positive_and_fusion_wins_selective() {
    let table = test_table(6000);
    let fusion = store_with(QueryMode::AdaptivePushdown, &table, 1000);
    let baseline = store_with(QueryMode::Reassemble, &table, 1000);
    let sql = "SELECT orderkey FROM t WHERE amount < 1.0";
    let f = fusion.query(sql).unwrap();
    let b = baseline.query(sql).unwrap();
    let fl = fusion.simulate_solo(&f.workflow);
    let bl = baseline.simulate_solo(&b.workflow);
    assert!(fl.0 > 0 && bl.0 > 0);
    assert!(
        fl < bl,
        "fusion ({fl}) should beat baseline ({bl}) on a selective query"
    );
}

#[test]
fn query_errors() {
    let table = test_table(100);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 50);
    assert!(store.query("SELECT ghost FROM t").is_err());
    assert!(store.query("SELECT orderkey FROM missing").is_err());
    assert!(store.query("not sql at all").is_err());
    assert!(store
        .query("SELECT orderkey FROM t WHERE flag < 5")
        .is_err());
}

#[test]
fn queries_after_failure_and_recovery() {
    let table = test_table(2000);
    let mut cfg = StoreConfig::fusion();
    cfg.overhead_threshold = 0.9;
    let bytes = write_table(
        &table,
        WriteOptions {
            rows_per_group: 500,
        },
    )
    .unwrap();
    let mut store = Store::new(cfg).unwrap();
    store.put("t", bytes).unwrap();
    let before = store
        .query("SELECT count(*) FROM t WHERE flag = 'O'")
        .unwrap();

    // Fail a node, recover it, and get identical answers.
    store.fail_node(3).unwrap();
    store.recover_node(3).unwrap();
    let after = store
        .query("SELECT count(*) FROM t WHERE flag = 'O'")
        .unwrap();
    assert_eq!(before.result, after.result);
}

#[test]
fn limit_truncates_rows_consistently() {
    let table = test_table(3000);
    let fusion = store_with(QueryMode::AdaptivePushdown, &table, 500);
    let baseline = store_with(QueryMode::Reassemble, &table, 500);
    let sql = "SELECT orderkey, amount FROM t WHERE flag = 'O' LIMIT 17";
    let a = fusion.query(sql).unwrap();
    let b = baseline.query(sql).unwrap();
    assert_eq!(a.result, b.result);
    assert_eq!(a.result.row_count, 17);
    assert_eq!(a.result.columns[0].1.len(), 17);
    // The limited rows are the *first* 17 matches in row order.
    let unlimited = fusion
        .query("SELECT orderkey, amount FROM t WHERE flag = 'O'")
        .unwrap();
    assert_eq!(
        a.result.columns[0].1,
        unlimited.result.columns[0].1.slice(0..17)
    );
    // Selectivity still reports the filter's true match rate.
    assert!((a.selectivity - unlimited.selectivity).abs() < 1e-12);
}

#[test]
fn limit_edge_cases() {
    let table = test_table(1000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 250);
    // LIMIT larger than the match count is a no-op.
    let a = store
        .query("SELECT orderkey FROM t WHERE flag = 'O' LIMIT 100000")
        .unwrap();
    let b = store
        .query("SELECT orderkey FROM t WHERE flag = 'O'")
        .unwrap();
    assert_eq!(a.result, b.result);
    // LIMIT 0 returns no rows.
    let z = store.query("SELECT orderkey FROM t LIMIT 0").unwrap();
    assert_eq!(z.result.row_count, 0);
    assert!(z.result.columns[0].1.is_empty());
    // Aggregates summarize all matches regardless of LIMIT.
    let c = store
        .query("SELECT count(*) FROM t WHERE flag = 'O' LIMIT 1")
        .unwrap();
    assert_eq!(
        c.result.aggregates[0].1,
        b.result
            .aggregates
            .first()
            .map_or(Value::Int(b.result.row_count as i64), |x| x.1.clone())
    );
}

#[test]
fn limit_reduces_transfers() {
    let table = test_table(6000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 1000);
    let small = store
        .query("SELECT orderkey FROM t WHERE amount >= 0.0 LIMIT 5")
        .unwrap();
    let full = store
        .query("SELECT orderkey FROM t WHERE amount >= 0.0")
        .unwrap();
    assert!(
        small.net_bytes < full.net_bytes,
        "{} vs {}",
        small.net_bytes,
        full.net_bytes
    );
}

#[test]
fn query_mix_feeds_the_traffic_engine() {
    use fusion_cluster::engine::SchedulingPolicy;
    use fusion_cluster::time::Nanos;
    use fusion_cluster::traffic::{ArrivalModel, BurstShape, Traffic, TrafficConfig, TrafficGen};

    let table = test_table(3000);
    let store = store_with(QueryMode::AdaptivePushdown, &table, 500);
    let mix = store
        .query_mix(&[
            ("t", "SELECT orderkey FROM t WHERE flag = 'O'"),
            ("t", "SELECT count(*) FROM t WHERE flag != 'N'"),
        ])
        .unwrap();
    assert_eq!(mix.len(), 2);
    assert!(mix.iter().all(|wf| !wf.is_empty()));

    // Compile the mix into an open-loop two-tenant stream and run it.
    let gen = TrafficGen::new(TrafficConfig {
        seed: 11,
        tenants: 2,
        zipf_theta: 0.5,
        arrivals: ArrivalModel::OpenPoisson { rate_qps: 2_000.0 },
        burst: BurstShape::Steady,
        horizon: Nanos::from_millis(50),
    });
    let Traffic::Open(jobs) = gen.generate(&[mix]) else {
        panic!("expected open-loop traffic");
    };
    assert!(!jobs.is_empty());
    let offered = jobs.len() as u64;
    let report = store.simulate_jobs(jobs, SchedulingPolicy::WeightedFair);
    assert_eq!(report.stats.len() as u64, offered);
    let served: u64 = report.tenants.values().map(|c| c.served).sum();
    assert_eq!(served, offered);
    for summary in report.tenant_summaries() {
        assert!(summary.p99 >= summary.p50);
        assert!(summary.goodput_qps > 0.0);
    }
}
