//! End-to-end codec regression: the full object lifecycle — put, node
//! failures, degraded query, scrub, recovery — must produce identical
//! results under `ScalarCodec` and `FastCodec`.
//!
//! The parameterized helper runs the lifecycle once per codec (and under
//! both query executors) and the test asserts the outputs are equal
//! field-by-field, so any divergence in the optimized kernels shows up as
//! a user-visible result diff, not just a unit-test failure.

use fusion_core::config::{QueryMode, StoreConfig};
use fusion_core::query::QueryResult;
use fusion_core::store::Store;
use fusion_ec::codec::CodecKind;
use fusion_format::prelude::*;

fn test_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("orderkey", LogicalType::Int64),
        Field::new("amount", LogicalType::Float64),
        Field::new("flag", LogicalType::Utf8),
    ]);
    Table::new(
        schema,
        vec![
            ColumnData::Int64((0..rows as i64).map(|i| i.wrapping_mul(37)).collect()),
            ColumnData::Float64((0..rows).map(|i| (i % 500) as f64 + 0.5).collect()),
            ColumnData::Utf8((0..rows).map(|i| ["N", "O", "F"][i % 3].into()).collect()),
        ],
    )
    .unwrap()
}

const QUERIES: &[&str] = &[
    "SELECT orderkey FROM t WHERE flag = 'O'",
    "SELECT amount, flag FROM t WHERE amount < 100.0",
    "SELECT count(*), sum(amount) FROM t WHERE flag != 'N'",
];

/// Everything observable from one lifecycle run.
#[derive(Debug, PartialEq)]
struct LifecycleOutcome {
    healthy_results: Vec<QueryResult>,
    degraded_results: Vec<QueryResult>,
    scrub_degraded: usize,
    scrub_clean_after_recovery: bool,
    recovered_results: Vec<QueryResult>,
    final_bytes: Vec<u8>,
}

/// put → query → fail m nodes → degraded query → scrub → recover →
/// scrub again → query → get, all under one codec and query mode.
fn run_lifecycle(codec: CodecKind, mode: QueryMode, threads: usize) -> LifecycleOutcome {
    let bytes = write_table(
        &test_table(3000),
        WriteOptions {
            rows_per_group: 500,
        },
    )
    .unwrap();
    let mut cfg = match mode {
        QueryMode::Reassemble => StoreConfig::baseline().with_block_size(16 << 10),
        _ => StoreConfig::fusion(),
    };
    cfg.query_mode = mode;
    cfg.overhead_threshold = 0.9;
    let mut store = Store::new(cfg.with_codec(codec).with_ec_threads(threads)).unwrap();
    store.put("t", bytes.clone()).unwrap();

    let healthy_results: Vec<QueryResult> = QUERIES
        .iter()
        .map(|sql| store.query(sql).expect(sql).result)
        .collect();

    // Lose m = n − k nodes: every stripe that touched them reads degraded.
    let m = store.config().ec.n - store.config().ec.k;
    let failed: Vec<usize> = (0..m).collect();
    for &node in &failed {
        store.fail_node(node).unwrap();
    }
    let degraded_results: Vec<QueryResult> = QUERIES
        .iter()
        .map(|sql| store.query(sql).expect(sql).result)
        .collect();

    // Scrub sees the down nodes as degraded stripes, nothing corrupt.
    let scrub = store.scrub();
    assert!(scrub.is_clean(), "{codec}/{mode:?}: scrub found corruption");

    for &node in &failed {
        store.recover_node(node).unwrap();
    }
    let after = store.scrub();
    let recovered_results: Vec<QueryResult> = QUERIES
        .iter()
        .map(|sql| store.query(sql).expect(sql).result)
        .collect();
    let final_bytes = store.get("t", 0, bytes.len() as u64).unwrap();
    assert_eq!(final_bytes, bytes, "{codec}/{mode:?}: bytes corrupted");

    LifecycleOutcome {
        healthy_results,
        degraded_results,
        scrub_degraded: scrub.stripes_degraded,
        scrub_clean_after_recovery: after.is_clean() && after.stripes_degraded == 0,
        recovered_results,
        final_bytes,
    }
}

#[test]
fn lifecycle_identical_under_both_codecs_fusion_executor() {
    let fast = run_lifecycle(CodecKind::Fast, QueryMode::AdaptivePushdown, 2);
    let scalar = run_lifecycle(CodecKind::Scalar, QueryMode::AdaptivePushdown, 1);
    assert!(
        fast.scrub_degraded > 0,
        "failures must degrade some stripes"
    );
    assert!(fast.scrub_clean_after_recovery);
    assert_eq!(fast, scalar);
}

#[test]
fn lifecycle_identical_under_both_codecs_baseline_executor() {
    let fast = run_lifecycle(CodecKind::Fast, QueryMode::Reassemble, 4);
    let scalar = run_lifecycle(CodecKind::Scalar, QueryMode::Reassemble, 1);
    assert!(fast.scrub_clean_after_recovery);
    assert_eq!(fast, scalar);
}

#[test]
fn degraded_results_match_healthy_results() {
    // Within one run, degraded reads must be invisible to queries.
    let out = run_lifecycle(CodecKind::Fast, QueryMode::AdaptivePushdown, 2);
    assert_eq!(out.healthy_results, out.degraded_results);
    assert_eq!(out.healthy_results, out.recovered_results);
}
