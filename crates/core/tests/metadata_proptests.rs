//! Property tests for the metadata-plane wire codecs (DESIGN.md §16):
//! the paper-format location map and the compact layout record must
//! roundtrip for arbitrary contents, reject malformed payloads with
//! typed errors instead of misparsing, and — for the compact record —
//! materialize exactly the map the deterministic placement implies.

use fusion_cluster::topology::Topology;
use fusion_core::config::EcConfig;
use fusion_core::location_map::{LocationEntry, LocationMap, LocationMapError};
use fusion_core::meta::{ChunkException, LayoutRecord};
use fusion_core::placement::{object_key, place_stripe, StripeShape};
use proptest::prelude::*;

fn arb_map() -> impl Strategy<Value = LocationMap> {
    prop::collection::vec((any::<u32>(), 0u32..1024), 0..64).prop_map(|entries| LocationMap {
        entries: entries
            .into_iter()
            .map(|(chunk_offset, node)| LocationEntry { chunk_offset, node })
            .collect(),
    })
}

fn arb_record() -> impl Strategy<Value = LayoutRecord> {
    (
        any::<u32>(),
        1u32..10_000,
        any::<u64>(),
        prop::collection::vec((0u32..10_000, 0u32..1024), 0..32),
    )
        .prop_map(|(epoch, chunks, size, mut ex)| {
            // The wire format requires sorted, unique, in-range chunks.
            ex.sort_by_key(|&(c, _)| c);
            ex.dedup_by_key(|&mut (c, _)| c);
            LayoutRecord {
                epoch,
                chunks,
                size,
                code: EcConfig::RS_9_6.into(),
                exceptions: ex
                    .into_iter()
                    .filter(|&(c, _)| c < chunks)
                    .map(|(chunk, node)| ChunkException { chunk, node })
                    .collect(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Paper-format map: encode/decode is the identity.
    #[test]
    fn location_map_roundtrips(map in arb_map()) {
        let bytes = map.to_bytes();
        prop_assert_eq!(bytes.len() as u64, map.byte_size());
        prop_assert_eq!(LocationMap::from_bytes(&bytes), Some(map.clone()));
        let nodes = map.entries.iter().map(|e| e.node).max().map_or(1, |m| m as usize + 1);
        prop_assert_eq!(LocationMap::from_bytes_checked(&bytes, nodes), Ok(map));
    }

    /// Any payload with a non-entry-aligned length is rejected, never
    /// partially parsed.
    #[test]
    fn location_map_rejects_odd_lengths(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let parsed = LocationMap::from_bytes(&bytes);
        if bytes.len().is_multiple_of(8) {
            prop_assert_eq!(parsed.map(|m| m.entries.len()), Some(bytes.len() / 8));
        } else {
            prop_assert_eq!(parsed, None);
            prop_assert_eq!(
                LocationMap::from_bytes_checked(&bytes, usize::MAX),
                Err(LocationMapError::BadLength(bytes.len()))
            );
        }
    }

    /// Truncating a valid map payload mid-entry is rejected; the
    /// checked parser flags the first out-of-range node.
    #[test]
    fn location_map_truncation_and_range(map in arb_map(), cut in 1usize..8) {
        let bytes = map.to_bytes();
        if !bytes.is_empty() {
            let cut = cut.min(bytes.len() - bytes.len() % 8).max(1);
            let truncated = &bytes[..bytes.len() - cut];
            if !truncated.len().is_multiple_of(8) {
                prop_assert_eq!(LocationMap::from_bytes(truncated), None);
            }
        }
        if let Some(worst) = map.entries.iter().map(|e| e.node).max() {
            let err = LocationMap::from_bytes_checked(&bytes, worst as usize);
            prop_assert!(matches!(err, Err(LocationMapError::NodeOutOfRange { .. })));
        }
    }

    /// Compact record: encode/decode is the identity, including the
    /// exception list.
    #[test]
    fn layout_record_roundtrips(rec in arb_record()) {
        let bytes = rec.to_bytes();
        prop_assert_eq!(bytes.len() as u64, rec.byte_size());
        prop_assert_eq!(LayoutRecord::from_bytes(&bytes), Ok(rec.clone()));
        prop_assert_eq!(LayoutRecord::from_bytes_checked(&bytes, 1024), Ok(rec));
    }

    /// Truncating a record anywhere (header or body) is a typed error.
    #[test]
    fn layout_record_rejects_truncation(rec in arb_record(), cut in 1usize..48) {
        let bytes = rec.to_bytes();
        let cut = cut.min(bytes.len());
        if cut > 0 {
            let truncated = &bytes[..bytes.len() - cut];
            prop_assert_eq!(
                LayoutRecord::from_bytes(truncated),
                Err(LocationMapError::BadLength(truncated.len()))
            );
        }
    }

    /// Deterministic placement is byte-stable and epoch-scoped: the same
    /// `(seed, key, stripe, membership)` always yields the same nodes,
    /// and a record's `node_of` agrees with the raw placement function.
    #[test]
    fn deterministic_placement_is_stable(
        seed: u64,
        name in "[a-z]{1,12}",
        chunks in 1u32..64,
    ) {
        let topo = Topology::racks(18, 6);
        let members: Vec<usize> = (0..18).collect();
        let shape = StripeShape::from_codec(
            &*EcConfig::RS_9_6.build_codec(fusion_ec::codec::CodecKind::Scalar).unwrap(),
        );
        let okey = object_key("bucket", &name);
        let rec = LayoutRecord {
            epoch: 0,
            chunks,
            size: u64::from(chunks) * 4096,
            code: EcConfig::RS_9_6.into(),
            exceptions: Vec::new(),
        };
        for c in 0..chunks {
            let (stripe, bin) = rec.stripe_of(c);
            let placed = place_stripe(seed, okey, stripe, &shape, &members, &topo);
            prop_assert_eq!(
                rec.node_of(c, seed, okey, &shape, &members, &topo),
                placed[bin]
            );
            // Re-evaluation returns the identical layout.
            prop_assert_eq!(
                place_stripe(seed, okey, stripe, &shape, &members, &topo),
                placed
            );
        }
    }
}
