//! Per-object metadata: layout, stripe placement, and the byte-range /
//! chunk-location indexes used by Get and Query.

use crate::layout::Layout;
use fusion_cluster::store::BlockId;
use fusion_format::footer::FileMeta;

/// Where one stripe's blocks live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripePlacement {
    /// One node per block: `k` data nodes then `n − k` parity nodes.
    pub nodes: Vec<usize>,
    /// Block ids, parallel to `nodes`.
    pub block_ids: Vec<BlockId>,
    /// Stripe width: the size of the largest (stored) data block, which is
    /// also every parity block's size.
    pub width: u64,
}

/// One contiguous object byte range inside one data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentLoc {
    /// Object offset where the extent starts.
    pub start: u64,
    /// Object offset where it ends (exclusive).
    pub end: u64,
    /// Stripe index.
    pub stripe: usize,
    /// Bin (data block) index within the stripe.
    pub bin: usize,
    /// Byte offset within the stored data block.
    pub offset_in_block: u64,
    /// Chunk ordinal, when the extent carries chunk data.
    pub chunk: Option<usize>,
}

impl ExtentLoc {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when empty (never constructed).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A fragment of a column chunk as physically stored: the unit the
/// baseline must fetch-and-reassemble, and that Fusion guarantees is whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkFragment {
    /// Node holding the fragment.
    pub node: usize,
    /// Block holding the fragment.
    pub block: BlockId,
    /// Offset within the block.
    pub offset_in_block: u64,
    /// Fragment length.
    pub len: u64,
    /// Object offset of the fragment start.
    pub object_offset: u64,
}

/// Complete metadata for one stored object.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// Object name.
    pub name: String,
    /// Object size in bytes.
    pub size: u64,
    /// The stripe layout.
    pub layout: Layout,
    /// Placement of each stripe.
    pub placement: Vec<StripePlacement>,
    /// Parsed analytics footer, when the object is an analytics file.
    pub file_meta: Option<FileMeta>,
    /// Which layout policy actually produced the layout (FAC may fall back
    /// to fixed when over the overhead threshold).
    pub policy_used: &'static str,
    /// Additional storage overhead vs optimal, as a fraction.
    pub overhead_vs_optimal: f64,
    /// Sorted byte-range index.
    extents: Vec<ExtentLoc>,
}

impl ObjectMeta {
    /// Builds the metadata, deriving the extent index from the layout.
    pub fn new(
        name: String,
        size: u64,
        layout: Layout,
        placement: Vec<StripePlacement>,
        file_meta: Option<FileMeta>,
        policy_used: &'static str,
        overhead_vs_optimal: f64,
    ) -> ObjectMeta {
        let mut extents = Vec::new();
        for (si, s) in layout.stripes.iter().enumerate() {
            for (bi, b) in s.bins.iter().enumerate() {
                let mut off = 0u64;
                for p in &b.pieces {
                    extents.push(ExtentLoc {
                        start: p.start,
                        end: p.end,
                        stripe: si,
                        bin: bi,
                        offset_in_block: off,
                        chunk: p.chunk,
                    });
                    off += p.len();
                }
            }
        }
        extents.sort_by_key(|e| e.start);
        ObjectMeta {
            name,
            size,
            layout,
            placement,
            file_meta,
            policy_used,
            overhead_vs_optimal,
            extents,
        }
    }

    /// The extent index (sorted by object offset).
    pub fn extents(&self) -> &[ExtentLoc] {
        &self.extents
    }

    /// Number of column chunks (0 for blobs).
    pub fn num_chunks(&self) -> usize {
        self.file_meta.as_ref().map_or(0, FileMeta::num_chunks)
    }

    /// Maps `(row_group, column)` to the chunk ordinal used by the layout
    /// (file order: row group outer, column inner).
    pub fn chunk_ordinal(&self, row_group: usize, column: usize) -> Option<usize> {
        let meta = self.file_meta.as_ref()?;
        let cols = meta.schema.len();
        if row_group >= meta.row_groups.len() || column >= cols {
            return None;
        }
        Some(row_group * cols + column)
    }

    /// Node that hosts `(stripe, bin)`'s data block.
    pub fn node_of(&self, stripe: usize, bin: usize) -> usize {
        self.placement[stripe].nodes[bin]
    }

    /// Block id of `(stripe, bin)`'s data block.
    pub fn block_of(&self, stripe: usize, bin: usize) -> BlockId {
        self.placement[stripe].block_ids[bin]
    }

    /// The physical fragments of a chunk, in object order. A FAC layout
    /// returns exactly one fragment; a fixed layout may return several on
    /// different nodes (the paper's Figure 12).
    pub fn chunk_fragments(&self, chunk: usize) -> Vec<ChunkFragment> {
        let mut frags: Vec<ChunkFragment> = self
            .extents
            .iter()
            .filter(|e| e.chunk == Some(chunk))
            .map(|e| ChunkFragment {
                node: self.node_of(e.stripe, e.bin),
                block: self.block_of(e.stripe, e.bin),
                offset_in_block: e.offset_in_block,
                len: e.len(),
                object_offset: e.start,
            })
            .collect();
        frags.sort_by_key(|f| f.object_offset);
        frags
    }

    /// Distinct nodes holding any fragment of `chunk`.
    pub fn chunk_nodes(&self, chunk: usize) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.chunk_fragments(chunk).iter().map(|f| f.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Locates the physical pieces covering object range
    /// `[offset, offset + len)`, clipped to the object.
    pub fn locate(&self, offset: u64, len: u64) -> Vec<ChunkFragment> {
        let end = (offset + len).min(self.size);
        let mut out = Vec::new();
        for e in &self.extents {
            if e.end <= offset || e.start >= end {
                continue;
            }
            let s = offset.max(e.start);
            let t = end.min(e.end);
            out.push(ChunkFragment {
                node: self.node_of(e.stripe, e.bin),
                block: self.block_of(e.stripe, e.bin),
                offset_in_block: e.offset_in_block + (s - e.start),
                len: t - s,
                object_offset: s,
            });
        }
        out.sort_by_key(|f| f.object_offset);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{fac, fixed, PackItem};

    fn tile(sizes: &[u64]) -> Vec<PackItem> {
        let mut items = Vec::new();
        let mut pos = 0;
        for (i, &s) in sizes.iter().enumerate() {
            items.push(PackItem {
                chunk: i,
                start: pos,
                end: pos + s,
            });
            pos += s;
        }
        items
    }

    fn placement_for(layout: &Layout, n: usize) -> Vec<StripePlacement> {
        let mut next = 0u64;
        layout
            .stripes
            .iter()
            .map(|s| {
                let nodes: Vec<usize> = (0..n).collect();
                let block_ids: Vec<BlockId> = (0..n)
                    .map(|_| {
                        next += 1;
                        BlockId(next)
                    })
                    .collect();
                StripePlacement {
                    nodes,
                    block_ids,
                    width: s.block_size(),
                }
            })
            .collect()
    }

    #[test]
    fn fac_chunks_have_single_fragment() {
        let items = tile(&[500, 30, 470, 20, 10, 250, 250, 90]);
        let layout = fac::pack(3, &items);
        let placement = placement_for(&layout, 5);
        let meta = ObjectMeta::new("o".into(), 1620, layout, placement, None, "fac", 0.0);
        for c in 0..8 {
            let frags = meta.chunk_fragments(c);
            assert_eq!(frags.len(), 1, "chunk {c} fragmented under FAC");
            assert_eq!(meta.chunk_nodes(c).len(), 1);
        }
    }

    #[test]
    fn fixed_chunks_fragment() {
        let items = tile(&[100, 100, 100]);
        let layout = fixed::pack(300, 80, 2, &items);
        let placement = placement_for(&layout, 4);
        let meta = ObjectMeta::new("o".into(), 300, layout, placement, None, "fixed", 0.0);
        // Chunk 1 spans blocks 1 and 2.
        assert!(meta.chunk_fragments(1).len() > 1);
        // Fragments cover the full chunk.
        let total: u64 = meta.chunk_fragments(1).iter().map(|f| f.len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn locate_ranges() {
        let items = tile(&[100, 100, 100]);
        let layout = fixed::pack(300, 80, 2, &items);
        let placement = placement_for(&layout, 4);
        let meta = ObjectMeta::new("o".into(), 300, layout, placement, None, "fixed", 0.0);
        // Range crossing two blocks: 70..90 spans blocks 0 and 1.
        let frags = meta.locate(70, 20);
        let total: u64 = frags.iter().map(|f| f.len).sum();
        assert_eq!(total, 20);
        assert!(frags.len() >= 2);
        assert_eq!(frags[0].object_offset, 70);
        // Clipped at object end.
        let frags = meta.locate(290, 100);
        assert_eq!(frags.iter().map(|f| f.len).sum::<u64>(), 10);
        // Fully out of range.
        assert!(meta.locate(500, 10).is_empty());
    }

    #[test]
    fn offsets_within_blocks_accumulate() {
        // Two chunks in the same bin: second must start after the first.
        let items = tile(&[50, 30]);
        let layout = crate::layout::fac::pack(1, &items);
        let placement = placement_for(&layout, 2);
        let meta = ObjectMeta::new("o".into(), 80, layout, placement, None, "fac", 0.0);
        let f0 = meta.chunk_fragments(0)[0];
        let f1 = meta.chunk_fragments(1)[0];
        if f0.block == f1.block {
            assert_ne!(f0.offset_in_block, f1.offset_in_block);
        }
    }

    #[test]
    fn chunk_ordinals_need_file_meta() {
        let items = tile(&[10]);
        let layout = fac::pack(1, &items);
        let placement = placement_for(&layout, 1);
        let meta = ObjectMeta::new("o".into(), 10, layout, placement, None, "fac", 0.0);
        assert_eq!(meta.chunk_ordinal(0, 0), None);
        assert_eq!(meta.num_chunks(), 0);
    }
}
