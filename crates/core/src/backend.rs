//! The backend split (DESIGN.md §17): one request-facing trait over two
//! execution planes.
//!
//! The paper's Fusion is a live object-storage service fielding
//! `GET`/`PUT`/`Query` traffic; this reproduction additionally runs the
//! same data plane under a discrete-event simulation for the paper's
//! figures. [`Backend`] is the seam between the two: it captures exactly
//! the storage/transport-plane operations a client can issue, with no
//! time-plane types in its signatures, so the *same* query executors and
//! test suites run unmodified against
//!
//! * [`DesBackend`] — the in-process [`Store`] as used by every figure:
//!   single caller at a time (a mutex models the DES's one-event-at-a-time
//!   world), virtual clock available out-of-band via [`DesBackend::store`];
//! * `fusion-service`'s `ServiceBackend` — the same `Store` behind real
//!   worker threads and a length-prefixed wire protocol, where the time
//!   plane is the wall clock.
//!
//! Bit-identical results across the two are a hard invariant (the
//! service equivalence suite enforces it): the trait returns the exact
//! [`QueryResult`]/byte payloads the store computes, never summaries.

use crate::error::Result;
use crate::query::QueryResult;
use crate::store::{PutReport, Store};
use std::sync::Mutex;

/// The wire-friendly residue of a [`PutReport`]: what a remote client
/// can know about its Put. Simulated latency and packer wall-clock stay
/// behind on the server — they are time-plane observations, not part of
/// the storage contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// Total bytes stored (data + padding + parity + metadata replicas).
    pub stored_bytes: u64,
    /// Number of stripes created.
    pub stripes: u64,
    /// Number of column chunks detected (0 for blobs).
    pub chunks: u64,
}

impl From<&PutReport> for PutOutcome {
    fn from(r: &PutReport) -> PutOutcome {
        PutOutcome {
            stored_bytes: r.stored_bytes,
            stripes: r.stripes as u64,
            chunks: r.chunks as u64,
        }
    }
}

/// The storage/transport plane a client sees, independent of how time
/// advances behind it. See the module docs for the two implementations.
///
/// All methods take `&self`: a backend is shared across client threads,
/// and each implementation chooses its own interior locking (the DES
/// backend serializes everything; the service backend read-locks for
/// `get`/`query` so real readers overlap).
pub trait Backend: Send + Sync {
    /// Stores an object under `name`.
    fn put(&self, name: &str, data: Vec<u8>) -> Result<PutOutcome>;

    /// Reads `len` bytes at `offset` of object `name` (degraded reads
    /// reconstruct transparently).
    fn get(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Runs a SQL query against `object` (the `FROM` name is ignored)
    /// and returns the exact result rows/aggregates.
    fn query(&self, object: &str, sql: &str) -> Result<QueryResult>;

    /// Marks a node failed (fault injection / operator action).
    fn fail_node(&self, node: usize) -> Result<()>;

    /// Revives a node and heals its blocks.
    fn recover_node(&self, node: usize) -> Result<()>;

    /// A short human-readable label for test/diagnostic output.
    fn label(&self) -> &'static str;
}

/// The simulation-plane backend: the plain in-process [`Store`] behind a
/// mutex. One request at a time, exactly like the single-threaded DES
/// world every figure runs in — the mutex is correctness scaffolding for
/// sharing across test threads, not a performance claim.
#[derive(Debug)]
pub struct DesBackend {
    store: Mutex<Store>,
}

impl DesBackend {
    /// Wraps a store.
    pub fn new(store: Store) -> DesBackend {
        DesBackend {
            store: Mutex::new(store),
        }
    }

    /// Runs `f` with the underlying store locked — for time-plane
    /// observations (simulated latencies, cache counters) the [`Backend`]
    /// surface deliberately omits.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut Store) -> R) -> R {
        let mut store = self
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut store)
    }

    /// Consumes the backend, returning the store.
    pub fn into_store(self) -> Store {
        self.store
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Backend for DesBackend {
    fn put(&self, name: &str, data: Vec<u8>) -> Result<PutOutcome> {
        self.with_store(|s| s.put(name, data).map(|r| PutOutcome::from(&r)))
    }

    fn get(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_store(|s| s.get(name, offset, len))
    }

    fn query(&self, object: &str, sql: &str) -> Result<QueryResult> {
        self.with_store(|s| s.query_as(object, sql).map(|o| o.result))
    }

    fn fail_node(&self, node: usize) -> Result<()> {
        self.with_store(|s| s.fail_node(node))
    }

    fn recover_node(&self, node: usize) -> Result<()> {
        self.with_store(|s| s.recover_node(node).map(|_| ()))
    }

    fn label(&self) -> &'static str {
        "des"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StoreConfig;
    use fusion_format::prelude::*;

    fn analytics_bytes(rows: usize) -> Vec<u8> {
        let schema = Schema::new(vec![Field::new("v", LogicalType::Int64)]);
        let table =
            Table::new(schema, vec![ColumnData::Int64((0..rows as i64).collect())]).unwrap();
        write_table(
            &table,
            WriteOptions {
                rows_per_group: 128,
            },
        )
        .unwrap()
    }

    #[test]
    fn des_backend_round_trips() {
        let be = DesBackend::new(Store::new(StoreConfig::fusion()).unwrap());
        let bytes = analytics_bytes(500);
        let out = be.put("obj", bytes.clone()).unwrap();
        assert!(out.stored_bytes as usize >= bytes.len());
        assert!(out.stripes >= 1);
        assert_eq!(be.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
        let r = be
            .query("obj", "SELECT SUM(v) FROM t WHERE v >= 0")
            .unwrap();
        assert_eq!(r.aggregates.len(), 1);
        assert_eq!(be.label(), "des");
        // The trait object is usable as such.
        let dynamic: &dyn Backend = &be;
        assert_eq!(dynamic.get("obj", 4, 4).unwrap(), bytes[4..8]);
    }

    #[test]
    fn des_backend_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DesBackend>();
    }
}
