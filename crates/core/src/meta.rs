//! The compact metadata plane (DESIGN.md §16): fixed-size per-object
//! layout records plus a sharded bucket/object namespace sized for
//! millions of objects.
//!
//! Under [`crate::config::PlacementPolicy::Deterministic`] chunk homes
//! are a pure function of `(seed, object, stripe, shard, membership)`
//! ([`crate::placement`]), so the per-object metadata shrinks from the
//! paper's 8 bytes *per chunk* to a 32-byte header plus one 8-byte
//! exception per chunk that has *moved away* from its computed home
//! (heal, manual migration). The paper-format
//! [`crate::location_map::LocationMap`] stays as the wire-compatible
//! differential oracle: materializing a record must reproduce it bit for
//! bit.
//!
//! Records carry an **epoch** — an index into the namespace's membership
//! history — so resolution always uses the membership the object was
//! placed against, and a membership change moves no data until
//! [`Namespace::rebalance`] advances records to the current epoch
//! (moving only the ~1/n of chunks whose rendezvous winner changed).

use crate::config::EcConfig;
use crate::location_map::{LocationEntry, LocationMap, LocationMapError};
use crate::object::ObjectMeta;
use crate::placement::{self, ObjectId, StripeShape};
use fusion_cluster::topology::Topology;
use fusion_obs::metrics::{Counter, Histogram, MetricsRegistry};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The erasure code of a record, packed to three bytes for the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeId {
    /// Total shards per stripe.
    pub n: u8,
    /// Data shards per stripe.
    pub k: u8,
    /// Local parity groups (0 = plain RS).
    pub local_groups: u8,
}

impl From<EcConfig> for CodeId {
    fn from(ec: EcConfig) -> CodeId {
        CodeId {
            n: ec.n as u8,
            k: ec.k as u8,
            local_groups: ec.local_groups as u8,
        }
    }
}

impl CodeId {
    /// Back to the full config.
    pub fn to_ec(self) -> EcConfig {
        EcConfig {
            n: self.n as usize,
            k: self.k as usize,
            local_groups: self.local_groups as usize,
        }
    }
}

/// One chunk that no longer lives at its computed home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkException {
    /// Chunk ordinal within the object.
    pub chunk: u32,
    /// Node actually hosting the chunk.
    pub node: u32,
}

/// The compact per-object layout record: everything needed to locate any
/// chunk, in `32 + 8 × exceptions` bytes regardless of chunk count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutRecord {
    /// Membership epoch the object was placed against.
    pub epoch: u32,
    /// Number of chunks in the object.
    pub chunks: u32,
    /// Object size in bytes.
    pub size: u64,
    /// Erasure code.
    pub code: CodeId,
    /// Chunks deviating from their computed home, sorted by chunk.
    pub exceptions: Vec<ChunkException>,
}

impl LayoutRecord {
    /// Fixed wire-header size.
    pub const HEADER_BYTES: u64 = 32;

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> u64 {
        Self::HEADER_BYTES + self.exceptions.len() as u64 * 8
    }

    /// The `(stripe, bin)` a chunk folds to under the canonical layout
    /// (`k` data bins per stripe, chunks in object order).
    #[inline]
    pub fn stripe_of(&self, chunk: u32) -> (u64, usize) {
        let k = u32::from(self.code.k.max(1));
        (u64::from(chunk / k), (chunk % k) as usize)
    }

    /// The node hosting `chunk`: the exception list if the chunk moved,
    /// otherwise the rendezvous computation for the record's epoch.
    pub fn node_of(
        &self,
        chunk: u32,
        seed: u64,
        okey: u64,
        shape: &StripeShape,
        members: &[usize],
        topo: &Topology,
    ) -> usize {
        if let Ok(i) = self.exceptions.binary_search_by_key(&chunk, |e| e.chunk) {
            return self.exceptions[i].node as usize;
        }
        let (stripe, bin) = self.stripe_of(chunk);
        placement::place_stripe(seed, okey, stripe, shape, members, topo)[bin]
    }

    /// Builds the record for a freshly written object: any chunk whose
    /// actual home (per the object's placement) differs from the
    /// computed home becomes an exception. Under the deterministic
    /// placement policy the store's homes *are* the computed ones, so
    /// freshly written objects carry zero exceptions by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn from_meta(
        meta: &ObjectMeta,
        epoch: u32,
        ec: EcConfig,
        seed: u64,
        okey: u64,
        shape: &StripeShape,
        members: &[usize],
        topo: &Topology,
    ) -> LayoutRecord {
        let k = (ec.k as u32).max(1);
        let chunks = meta.num_chunks() as u32;
        let mut exceptions = Vec::new();
        let mut cached: Option<(u64, Vec<usize>)> = None;
        for c in 0..chunks {
            let frags = meta.chunk_fragments(c as usize);
            let actual = frags.first().map_or(0, |f| f.node);
            let stripe = u64::from(c / k);
            let canonical = match &cached {
                Some((s, p)) if *s == stripe => p[(c % k) as usize],
                _ => {
                    let p = placement::place_stripe(seed, okey, stripe, shape, members, topo);
                    let node = p[(c % k) as usize];
                    cached = Some((stripe, p));
                    node
                }
            };
            if actual != canonical {
                exceptions.push(ChunkException {
                    chunk: c,
                    node: actual as u32,
                });
            }
        }
        LayoutRecord {
            epoch,
            chunks,
            size: meta.size,
            code: ec.into(),
            exceptions,
        }
    }

    /// Materializes the paper-format map this record stands for — the
    /// differential oracle. Chunk offsets come from the object's footer
    /// metadata (the record deliberately does not duplicate them), node
    /// ids from [`LayoutRecord::node_of`].
    ///
    /// # Errors
    ///
    /// Propagates the map builder's offset-overflow check.
    pub fn materialize(
        &self,
        meta: &ObjectMeta,
        seed: u64,
        okey: u64,
        shape: &StripeShape,
        members: &[usize],
        topo: &Topology,
    ) -> Result<LocationMap, LocationMapError> {
        let mut entries = Vec::with_capacity(self.chunks as usize);
        for c in 0..self.chunks {
            let frags = meta.chunk_fragments(c as usize);
            let offset = frags.first().map_or(0, |f| f.object_offset);
            let chunk_offset =
                u32::try_from(offset).map_err(|_| LocationMapError::OffsetOverflow {
                    chunk: c as usize,
                    offset,
                })?;
            entries.push(LocationEntry {
                chunk_offset,
                node: self.node_of(c, seed, okey, shape, members, topo) as u32,
            });
        }
        Ok(LocationMap { entries })
    }

    /// Serializes to the compact wire format: a 32-byte header
    /// (epoch, chunks, size, code, exception count, reserved) followed
    /// by 8 bytes per exception.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size() as usize);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.chunks.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.push(self.code.n);
        out.push(self.code.k);
        out.push(self.code.local_groups);
        out.push(0);
        out.extend_from_slice(&(self.exceptions.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]);
        for e in &self.exceptions {
            out.extend_from_slice(&e.chunk.to_le_bytes());
            out.extend_from_slice(&e.node.to_le_bytes());
        }
        out
    }

    /// Parses the compact wire format.
    ///
    /// # Errors
    ///
    /// [`LocationMapError::BadLength`] on a truncated header or a body
    /// that disagrees with the exception count,
    /// [`LocationMapError::BadCode`] on an impossible `(n, k)`,
    /// [`LocationMapError::ExceptionsInvalid`] on an unsorted,
    /// duplicated, or out-of-range exception list.
    pub fn from_bytes(bytes: &[u8]) -> Result<LayoutRecord, LocationMapError> {
        if bytes.len() < Self::HEADER_BYTES as usize {
            return Err(LocationMapError::BadLength(bytes.len()));
        }
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
        let epoch = u32_at(0);
        let chunks = u32_at(4);
        let size = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let code = CodeId {
            n: bytes[16],
            k: bytes[17],
            local_groups: bytes[18],
        };
        if code.k == 0 || code.k > code.n {
            return Err(LocationMapError::BadCode {
                n: code.n,
                k: code.k,
            });
        }
        let count = u32_at(20) as usize;
        if bytes.len() != Self::HEADER_BYTES as usize + count * 8 {
            return Err(LocationMapError::BadLength(bytes.len()));
        }
        let mut exceptions = Vec::with_capacity(count);
        for i in 0..count {
            let base = Self::HEADER_BYTES as usize + i * 8;
            let e = ChunkException {
                chunk: u32_at(base),
                node: u32_at(base + 4),
            };
            let ordered = exceptions
                .last()
                .is_none_or(|p: &ChunkException| p.chunk < e.chunk);
            if !ordered || e.chunk >= chunks {
                return Err(LocationMapError::ExceptionsInvalid { index: i });
            }
            exceptions.push(e);
        }
        Ok(LayoutRecord {
            epoch,
            chunks,
            size,
            code,
            exceptions,
        })
    }

    /// Parses and additionally validates every exception's node id
    /// against the cluster size (the same use-site check as
    /// [`LocationMap::from_bytes_checked`]).
    ///
    /// # Errors
    ///
    /// Everything [`LayoutRecord::from_bytes`] returns, plus
    /// [`LocationMapError::NodeOutOfRange`].
    pub fn from_bytes_checked(
        bytes: &[u8],
        nodes: usize,
    ) -> Result<LayoutRecord, LocationMapError> {
        let rec = Self::from_bytes(bytes)?;
        for e in &rec.exceptions {
            if e.node as usize >= nodes {
                return Err(LocationMapError::NodeOutOfRange {
                    chunk: e.chunk as usize,
                    node: e.node,
                    nodes,
                });
            }
        }
        Ok(rec)
    }
}

/// One membership epoch: which node ids are in service (sorted) and the
/// failure-domain layout covering every id ever assigned.
#[derive(Debug, Clone, PartialEq)]
pub struct Membership {
    /// In-service node ids, ascending.
    pub members: Vec<usize>,
    /// Rack/host coordinates for all node ids (including departed ones —
    /// ids are never reused).
    pub topology: Topology,
}

impl Membership {
    /// Every node of `topology` in service.
    pub fn full(topology: Topology) -> Membership {
        Membership {
            members: (0..topology.nodes()).collect(),
            topology,
        }
    }
}

/// FNV-1a, used as the namespace's map hasher so shard iteration order —
/// and therefore every sampled scan — is identical across runs and
/// processes (std's default hasher is randomly keyed per process).
#[derive(Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type DetMap = HashMap<u128, LayoutRecord, BuildHasherDefault<DetHasher>>;

/// What a rebalance pass did, in the same wire-byte accounting the
/// repair path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceReport {
    /// Stale-epoch objects examined (bounded by the scan limit).
    pub objects_scanned: usize,
    /// Chunks examined across those objects.
    pub chunks_total: u64,
    /// Chunks whose home changed (data that must cross the wire).
    pub chunks_moved: u64,
    /// Wire bytes those moves represent.
    pub bytes_moved: u64,
}

impl RebalanceReport {
    /// Fraction of examined chunks that moved.
    pub fn moved_fraction(&self) -> f64 {
        if self.chunks_total == 0 {
            0.0
        } else {
            self.chunks_moved as f64 / self.chunks_total as f64
        }
    }
}

/// The sharded bucket/object metadata index. Shard count is a power of
/// two fixed at construction; object ids hash across shards, and every
/// shard is an independent deterministic-hash map, so the structure is
/// sized for tens of millions of objects (~56 B + record per entry)
/// while any single lookup touches one shard.
///
/// # Concurrency
///
/// Built for service-mode worker threads: every operation takes `&self`.
/// Each shard sits behind its own [`RwLock`], so lookups on different
/// shards never contend and lookups on the same shard share a read lock;
/// only insert/remove/rebalance write-lock a shard (one at a time).
///
/// The membership history is **append-only** `Arc<Membership>`s behind
/// one `RwLock`: epochs are never edited in place, and a record naming
/// epoch `e` is only inserted after epoch `e` exists (enforced in
/// [`Namespace::insert`]). A reader therefore either sees an epoch fully
/// or not at all — there is no torn state to observe — and resolution
/// clones the `Arc` so the epoch stays alive without holding any lock
/// across the placement computation.
///
/// Lock poisoning is recovered, not propagated: a panicking writer must
/// not take the whole metadata plane down with it (the maps are updated
/// with single `HashMap` calls, so a poisoned guard still holds a
/// consistent map).
pub struct Namespace {
    seed: u64,
    ec: EcConfig,
    shape: StripeShape,
    shard_mask: usize,
    shards: Vec<RwLock<DetMap>>,
    epochs: RwLock<Vec<Arc<Membership>>>,
    record_bytes: AtomicU64,
    metrics: MetricsRegistry,
    lookups: Arc<Counter>,
    misses: Arc<Counter>,
    lookup_ns: Arc<Histogram>,
}

/// Recovers a read guard from a poisoned lock (see the type docs).
fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Recovers a write guard from a poisoned lock (see the type docs).
fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Namespace {
    /// A namespace over `shard_count` shards (rounded up to a power of
    /// two) for objects coded with `ec`, starting from membership epoch
    /// 0 = `initial`.
    ///
    /// # Errors
    ///
    /// Propagates codec parameter validation for `ec`.
    pub fn new(
        seed: u64,
        shard_count: usize,
        ec: EcConfig,
        initial: Membership,
    ) -> crate::error::Result<Namespace> {
        let code = ec.build_codec(fusion_ec::codec::CodecKind::Scalar)?;
        let shape = StripeShape::from_codec(&*code);
        let shards = shard_count.max(1).next_power_of_two();
        let metrics = MetricsRegistry::new();
        let lookups = metrics.counter("meta_lookups");
        let misses = metrics.counter("meta_lookup_misses");
        let lookup_ns = metrics.histogram("meta_lookup_ns");
        let mut initial = initial;
        initial.members.sort_unstable();
        initial.members.dedup();
        Ok(Namespace {
            seed,
            ec,
            shape,
            shard_mask: shards - 1,
            shards: (0..shards)
                .map(|_| RwLock::new(DetMap::default()))
                .collect(),
            epochs: RwLock::new(vec![Arc::new(initial)]),
            record_bytes: AtomicU64::new(0),
            metrics,
            lookups,
            misses,
            lookup_ns,
        })
    }

    #[inline]
    fn shard_of(&self, id: ObjectId) -> usize {
        (id.placement_key() as usize) & self.shard_mask
    }

    /// The placement seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The erasure code objects in this namespace use.
    pub fn ec(&self) -> EcConfig {
        self.ec
    }

    /// The current membership epoch index.
    pub fn current_epoch(&self) -> u32 {
        (read_lock(&self.epochs).len() - 1) as u32
    }

    /// The membership of an epoch, if it exists. The `Arc` keeps the
    /// epoch valid without holding the history lock.
    pub fn membership(&self, epoch: u32) -> Option<Arc<Membership>> {
        read_lock(&self.epochs).get(epoch as usize).cloned()
    }

    /// The current membership.
    pub fn current_membership(&self) -> Arc<Membership> {
        read_lock(&self.epochs)
            .last()
            .expect("at least one epoch")
            .clone()
    }

    /// Number of objects indexed.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).len()).sum()
    }

    /// Whether the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| read_lock(s).is_empty())
    }

    /// Total serialized bytes of every record (maintained incrementally).
    pub fn record_bytes(&self) -> u64 {
        self.record_bytes.load(Ordering::Relaxed)
    }

    /// Number of index shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The namespace's metrics registry (`meta_lookups`,
    /// `meta_lookup_misses` counters and the `meta_lookup_ns` histogram).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Inserts or replaces a record, returning the previous one.
    ///
    /// # Panics
    ///
    /// Panics if the record names an epoch this namespace has never had —
    /// the invariant that lets lock-free-reading resolvers trust any
    /// epoch index they find in a record.
    pub fn insert(&self, id: ObjectId, record: LayoutRecord) -> Option<LayoutRecord> {
        let history = read_lock(&self.epochs).len();
        assert!(
            (record.epoch as usize) < history,
            "record epoch {} beyond namespace history {history}",
            record.epoch,
        );
        let added = record.byte_size();
        let prev = write_lock(&self.shards[self.shard_of(id)]).insert(id.0, record);
        self.record_bytes.fetch_add(added, Ordering::Relaxed);
        if let Some(p) = &prev {
            self.record_bytes
                .fetch_sub(p.byte_size(), Ordering::Relaxed);
        }
        prev
    }

    /// The record for an object, if present (cloned out of the shard so
    /// no lock is held by the caller).
    pub fn get(&self, id: ObjectId) -> Option<LayoutRecord> {
        read_lock(&self.shards[self.shard_of(id)])
            .get(&id.0)
            .cloned()
    }

    /// Removes an object's record.
    pub fn remove(&self, id: ObjectId) -> Option<LayoutRecord> {
        let prev = write_lock(&self.shards[self.shard_of(id)]).remove(&id.0);
        if let Some(p) = &prev {
            self.record_bytes
                .fetch_sub(p.byte_size(), Ordering::Relaxed);
        }
        prev
    }

    /// Resolves the node hosting `chunk` of object `id` — the metadata
    /// hot path. Counts into `meta_lookups`/`meta_lookup_misses` and
    /// records wall-clock nanoseconds into `meta_lookup_ns`.
    ///
    /// Locking: the shard read lock covers only the record fetch; the
    /// epoch is cloned out as an `Arc` so the rendezvous computation runs
    /// lock-free. Because epochs are append-only and records never name a
    /// not-yet-published epoch, a concurrent `add_node`/`rebalance` can
    /// change *which* consistent epoch a racing lookup resolves against,
    /// but never expose a partially-built one.
    pub fn chunk_node(&self, id: ObjectId, chunk: u32) -> Option<usize> {
        let t0 = std::time::Instant::now();
        let rec = read_lock(&self.shards[self.shard_of(id)])
            .get(&id.0)
            .filter(|rec| chunk < rec.chunks)
            .cloned();
        let out = rec.map(|rec| {
            let m = self.membership(rec.epoch).expect("record epoch published");
            rec.node_of(
                chunk,
                self.seed,
                id.placement_key(),
                &self.shape,
                &m.members,
                &m.topology,
            )
        });
        self.lookups.inc();
        if out.is_none() {
            self.misses.inc();
        }
        self.lookup_ns.record(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Opens a new membership epoch with one node added in `rack`
    /// (`rack == domains()` opens a new rack). Returns the new node's id.
    /// No data moves until [`Namespace::rebalance`]. The new epoch is
    /// built off-lock and published with one append.
    pub fn add_node(&self, rack: usize) -> usize {
        let mut epochs = write_lock(&self.epochs);
        let cur = epochs.last().expect("at least one epoch");
        let topology = cur.topology.with_added_node(rack);
        let node = topology.nodes() - 1;
        let mut members = cur.members.clone();
        members.push(node);
        epochs.push(Arc::new(Membership { members, topology }));
        node
    }

    /// Opens a new membership epoch with `node` removed from service.
    /// The topology keeps the id (ids are never reused); only the member
    /// set shrinks. No data moves until [`Namespace::rebalance`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is not currently a member or is the last one.
    pub fn remove_node(&self, node: usize) {
        let mut epochs = write_lock(&self.epochs);
        let cur = epochs.last().expect("at least one epoch");
        let mut members = cur.members.clone();
        let i = members
            .binary_search(&node)
            .unwrap_or_else(|_| panic!("node {node} is not a member"));
        members.remove(i);
        assert!(!members.is_empty(), "cannot remove the last member");
        let topology = cur.topology.clone();
        epochs.push(Arc::new(Membership { members, topology }));
    }

    /// Advances up to `limit` stale-epoch records (all of them when
    /// `None`) to the current epoch, counting every chunk whose home
    /// changed as `chunk_bytes` of rebalance wire traffic. Exceptions
    /// survive a rebalance while their node stays in service (the data
    /// did not move); exceptions stranded on departed nodes heal back to
    /// their computed home and count as moves.
    ///
    /// Deterministic: shards and entries are visited in the namespace's
    /// stable iteration order, so a bounded scan always examines the
    /// same objects.
    pub fn rebalance(&self, chunk_bytes: u64, limit: Option<usize>) -> RebalanceReport {
        // Snapshot the epoch history once: append-only Arcs, so the
        // clone is cheap and stays valid however long the scan runs.
        let epochs: Vec<Arc<Membership>> = read_lock(&self.epochs).clone();
        let current = (epochs.len() - 1) as u32;
        let cap = limit.unwrap_or(usize::MAX);
        let new_m = &epochs[current as usize];
        let seed = self.seed;
        let shape = self.shape.clone();
        let mut report = RebalanceReport::default();
        'scan: for shard in &self.shards {
            // One shard write-locked at a time: concurrent lookups on
            // other shards proceed; a lookup racing this shard sees the
            // record wholly before or wholly after its epoch advance.
            let mut map = write_lock(shard);
            for (key, rec) in map.iter_mut() {
                if rec.epoch == current {
                    continue;
                }
                if report.objects_scanned >= cap {
                    break 'scan;
                }
                report.objects_scanned += 1;
                let okey = ObjectId(*key).placement_key();
                let old_m = &epochs[rec.epoch as usize];
                let mut old_cache: Option<(u64, Vec<usize>)> = None;
                let mut new_cache: Option<(u64, Vec<usize>)> = None;
                let k = u32::from(rec.code.k.max(1));
                let mut ex = rec.exceptions.iter().peekable();
                self.record_bytes
                    .fetch_sub(rec.byte_size(), Ordering::Relaxed);
                let mut kept = Vec::new();
                for c in 0..rec.chunks {
                    report.chunks_total += 1;
                    let exception = ex.next_if(|e| e.chunk == c);
                    let stripe = u64::from(c / k);
                    let bin = (c % k) as usize;
                    let canonical =
                        |cache: &mut Option<(u64, Vec<usize>)>, m: &Membership| match cache {
                            Some((s, p)) if *s == stripe => p[bin],
                            _ => {
                                let p = placement::place_stripe(
                                    seed,
                                    okey,
                                    stripe,
                                    &shape,
                                    &m.members,
                                    &m.topology,
                                );
                                let node = p[bin];
                                *cache = Some((stripe, p));
                                node
                            }
                        };
                    let old_node = exception
                        .map(|e| e.node as usize)
                        .unwrap_or_else(|| canonical(&mut old_cache, old_m));
                    let new_node = match exception {
                        Some(e) if new_m.members.binary_search(&(e.node as usize)).is_ok() => {
                            kept.push(*e);
                            e.node as usize
                        }
                        _ => canonical(&mut new_cache, new_m),
                    };
                    if old_node != new_node {
                        report.chunks_moved += 1;
                        report.bytes_moved += chunk_bytes;
                    }
                }
                rec.exceptions = kept;
                rec.epoch = current;
                self.record_bytes
                    .fetch_add(rec.byte_size(), Ordering::Relaxed);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::object_id;

    fn record(epoch: u32, chunks: u32, exceptions: Vec<ChunkException>) -> LayoutRecord {
        LayoutRecord {
            epoch,
            chunks,
            size: u64::from(chunks) * 1024,
            code: EcConfig::RS_9_6.into(),
            exceptions,
        }
    }

    #[test]
    fn record_wire_roundtrip() {
        let rec = record(
            3,
            64,
            vec![
                ChunkException { chunk: 5, node: 2 },
                ChunkException { chunk: 9, node: 7 },
            ],
        );
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len() as u64, rec.byte_size());
        assert_eq!(bytes.len(), 48);
        assert_eq!(LayoutRecord::from_bytes(&bytes), Ok(rec.clone()));
        assert_eq!(LayoutRecord::from_bytes_checked(&bytes, 9), Ok(rec));
        assert_eq!(
            LayoutRecord::from_bytes_checked(&bytes, 7),
            Err(LocationMapError::NodeOutOfRange {
                chunk: 9,
                node: 7,
                nodes: 7
            })
        );
    }

    #[test]
    fn record_wire_rejects_malformed() {
        let rec = record(0, 8, vec![ChunkException { chunk: 1, node: 0 }]);
        let bytes = rec.to_bytes();
        // Truncated header and truncated body.
        assert_eq!(
            LayoutRecord::from_bytes(&bytes[..16]),
            Err(LocationMapError::BadLength(16))
        );
        assert_eq!(
            LayoutRecord::from_bytes(&bytes[..bytes.len() - 3]),
            Err(LocationMapError::BadLength(37))
        );
        // Impossible code.
        let mut bad = bytes.clone();
        bad[17] = 0;
        assert_eq!(
            LayoutRecord::from_bytes(&bad),
            Err(LocationMapError::BadCode { n: 9, k: 0 })
        );
        // Out-of-range exception chunk.
        let rec = record(0, 2, vec![ChunkException { chunk: 5, node: 0 }]);
        assert_eq!(
            LayoutRecord::from_bytes(&rec.to_bytes()),
            Err(LocationMapError::ExceptionsInvalid { index: 0 })
        );
        // Unsorted exceptions.
        let rec = record(
            0,
            64,
            vec![
                ChunkException { chunk: 9, node: 1 },
                ChunkException { chunk: 5, node: 1 },
            ],
        );
        assert_eq!(
            LayoutRecord::from_bytes(&rec.to_bytes()),
            Err(LocationMapError::ExceptionsInvalid { index: 1 })
        );
    }

    #[test]
    fn namespace_insert_get_remove() {
        let topo = Topology::racks(18, 6);
        let ns = Namespace::new(1, 8, EcConfig::RS_9_6, Membership::full(topo)).unwrap();
        assert!(ns.is_empty());
        for i in 0..100 {
            let id = object_id("bucket", &format!("obj-{i}"));
            assert!(ns.insert(id, record(0, 16, vec![])).is_none());
        }
        assert_eq!(ns.len(), 100);
        assert_eq!(ns.record_bytes(), 100 * 32);
        let id = object_id("bucket", "obj-7");
        assert_eq!(ns.get(id).unwrap().chunks, 16);
        assert!(ns.remove(id).is_some());
        assert_eq!(ns.len(), 99);
        assert_eq!(ns.record_bytes(), 99 * 32);
        assert!(ns.get(id).is_none());
        // Replacing subtracts the old record's bytes.
        let id = object_id("bucket", "obj-8");
        ns.insert(
            id,
            record(0, 16, vec![ChunkException { chunk: 0, node: 1 }]),
        );
        assert_eq!(ns.record_bytes(), 98 * 32 + 40);
    }

    #[test]
    fn chunk_node_resolves_and_counts() {
        let topo = Topology::racks(18, 6);
        let ns = Namespace::new(2, 4, EcConfig::RS_9_6, Membership::full(topo)).unwrap();
        let id = object_id("b", "x");
        ns.insert(
            id,
            record(0, 12, vec![ChunkException { chunk: 3, node: 17 }]),
        );
        // Exception honored.
        assert_eq!(ns.chunk_node(id, 3), Some(17));
        // Canonical chunks resolve deterministically and within range.
        let a = ns.chunk_node(id, 0).unwrap();
        assert_eq!(ns.chunk_node(id, 0), Some(a));
        assert!(a < 18);
        // Chunks 0 and 1 share a stripe: distinct bins, distinct nodes.
        assert_ne!(ns.chunk_node(id, 0), ns.chunk_node(id, 1));
        // Out-of-range chunk and unknown object miss.
        assert_eq!(ns.chunk_node(id, 12), None);
        assert_eq!(ns.chunk_node(object_id("b", "y"), 0), None);
        assert_eq!(ns.metrics().counter("meta_lookups").get(), 7);
        assert_eq!(ns.metrics().counter("meta_lookup_misses").get(), 2);
        assert_eq!(ns.metrics().histogram("meta_lookup_ns").count(), 7);
    }

    #[test]
    fn membership_changes_open_epochs_lazily() {
        let topo = Topology::racks(12, 4);
        let ns = Namespace::new(3, 4, EcConfig::RS_9_6, Membership::full(topo)).unwrap();
        let id = object_id("b", "lazy");
        ns.insert(id, record(0, 24, vec![]));
        let before: Vec<_> = (0..24).map(|c| ns.chunk_node(id, c).unwrap()).collect();
        let added = ns.add_node(0);
        assert_eq!(added, 12);
        assert_eq!(ns.current_epoch(), 1);
        // Records resolve against their own epoch until rebalanced.
        let after: Vec<_> = (0..24).map(|c| ns.chunk_node(id, c).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn rebalance_moves_a_small_fraction_on_add() {
        let topo = Topology::racks(24, 6);
        let ns = Namespace::new(4, 16, EcConfig::RS_9_6, Membership::full(topo)).unwrap();
        for i in 0..400 {
            let id = object_id("b", &format!("o{i}"));
            ns.insert(id, record(0, 30, vec![]));
        }
        ns.add_node(2);
        let report = ns.rebalance(1 << 20, None);
        assert_eq!(report.objects_scanned, 400);
        assert_eq!(report.chunks_total, 400 * 30);
        let frac = report.moved_fraction();
        // Rendezvous: ~1/25 of chunks move, well under 2/25.
        assert!(
            frac > 0.0 && frac < 2.0 / 25.0,
            "moved fraction {frac} too high for a single node add"
        );
        assert_eq!(report.bytes_moved, report.chunks_moved * (1 << 20));
        // Everything is current now: a second pass is a no-op.
        let again = ns.rebalance(1 << 20, None);
        assert_eq!(again.objects_scanned, 0);
        assert_eq!(again.chunks_moved, 0);
    }

    #[test]
    fn rebalance_heals_stranded_exceptions_and_keeps_live_ones() {
        let topo = Topology::racks(12, 4);
        let ns = Namespace::new(5, 4, EcConfig::RS_9_6, Membership::full(topo)).unwrap();
        let id = object_id("b", "exc");
        ns.insert(
            id,
            record(
                0,
                12,
                vec![
                    ChunkException { chunk: 2, node: 11 },
                    ChunkException { chunk: 4, node: 3 },
                ],
            ),
        );
        ns.remove_node(11);
        let report = ns.rebalance(64, None);
        assert!(report.chunks_moved >= 1, "stranded exception must move");
        let rec = ns.get(id).unwrap();
        assert_eq!(rec.epoch, 1);
        // The live exception survived; the stranded one healed away.
        assert_eq!(rec.exceptions, vec![ChunkException { chunk: 4, node: 3 }]);
        // Nothing resolves to the departed node anymore.
        for c in 0..12 {
            assert_ne!(ns.chunk_node(id, c), Some(11));
        }
    }

    #[test]
    fn rebalance_scan_limit_bounds_work_deterministically() {
        let topo = Topology::racks(12, 4);
        let ns = Namespace::new(6, 8, EcConfig::RS_9_6, Membership::full(topo)).unwrap();
        for i in 0..50 {
            ns.insert(object_id("b", &format!("o{i}")), record(0, 6, vec![]));
        }
        ns.add_node(0);
        let first = ns.rebalance(1, Some(20));
        assert_eq!(first.objects_scanned, 20);
        let rest = ns.rebalance(1, None);
        assert_eq!(rest.objects_scanned, 30);
    }

    #[test]
    fn concurrent_lookups_never_observe_torn_epochs() {
        // The service-mode contract: reader threads hammer `chunk_node`
        // and `get` while one writer adds nodes, removes them, and
        // rebalances. Every resolved node must belong to the membership
        // of SOME published epoch — a torn epoch (partially-built member
        // list or topology) would surface as an out-of-range node, a
        // panic, or a record naming an unpublished epoch.
        use std::sync::atomic::AtomicBool;
        let topo = Topology::racks(12, 4);
        let ns = Arc::new(Namespace::new(7, 8, EcConfig::RS_9_6, Membership::full(topo)).unwrap());
        let objects = 64;
        for i in 0..objects {
            ns.insert(object_id("b", &format!("o{i}")), record(0, 30, vec![]));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let ns = Arc::clone(&ns);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut resolved = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for i in 0..objects {
                            let id = object_id("b", &format!("o{i}"));
                            let chunk = ((i + t) % 30) as u32;
                            if let Some(node) = ns.chunk_node(id, chunk) {
                                // The node must exist in the topology of
                                // the record's (published) epoch.
                                let rec = ns.get(id).expect("record present");
                                let m = ns.membership(rec.epoch).expect("epoch published");
                                assert!(
                                    node < m.topology.nodes(),
                                    "node {node} outside epoch topology"
                                );
                                resolved += 1;
                            }
                        }
                    }
                    resolved
                })
            })
            .collect();
        // Writer: grow, shrink, rebalance — each publishes a new epoch.
        for round in 0..6 {
            let added = ns.add_node(round % 4);
            ns.rebalance(1 << 10, None);
            if round % 2 == 0 {
                ns.remove_node(added);
                ns.rebalance(1 << 10, None);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let mut total = 0;
        for r in readers {
            total += r.join().expect("reader panicked — torn state observed");
        }
        assert!(total > 0, "readers resolved nothing");
        // After the dust settles every record sits at the current epoch.
        ns.rebalance(1, None);
        let cur = ns.current_epoch();
        for i in 0..objects {
            let rec = ns.get(object_id("b", &format!("o{i}"))).unwrap();
            assert_eq!(rec.epoch, cur);
        }
        // Byte accounting survived the concurrent churn exactly.
        let expect: u64 = (0..objects)
            .map(|i| {
                ns.get(object_id("b", &format!("o{i}")))
                    .unwrap()
                    .byte_size()
            })
            .sum();
        assert_eq!(ns.record_bytes(), expect);
    }
}
