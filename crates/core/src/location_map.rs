//! The chunk location map (paper §5, "Metadata Management").
//!
//! Fusion keeps one map per object, tracking which storage node hosts each
//! column chunk. Every entry is 8 bytes — 4 for the chunk's byte offset
//! within the object, 4 for the storage node id — and the map is
//! replicated to `k + 1` nodes so it survives the same number of failures
//! as RS(n, k) data.

use crate::object::ObjectMeta;

/// One 8-byte entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationEntry {
    /// Byte offset of the chunk within the object (u32, as in the paper).
    pub chunk_offset: u32,
    /// Node id hosting the chunk (first fragment, for split chunks).
    pub node: u32,
}

/// The per-object chunk location map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocationMap {
    /// Entries ordered by chunk ordinal.
    pub entries: Vec<LocationEntry>,
}

impl LocationMap {
    /// Builds the map from object metadata (one entry per chunk).
    pub fn build(meta: &ObjectMeta) -> LocationMap {
        let entries = (0..meta.num_chunks())
            .map(|c| {
                let frags = meta.chunk_fragments(c);
                let first = frags.first();
                LocationEntry {
                    chunk_offset: first.map_or(0, |f| f.object_offset as u32),
                    node: first.map_or(0, |f| f.node as u32),
                }
            })
            .collect();
        LocationMap { entries }
    }

    /// Serialized size in bytes (8 per entry).
    pub fn byte_size(&self) -> u64 {
        self.entries.len() as u64 * 8
    }

    /// Serializes to the 8-bytes-per-entry wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 8);
        for e in &self.entries {
            out.extend_from_slice(&e.chunk_offset.to_le_bytes());
            out.extend_from_slice(&e.node.to_le_bytes());
        }
        out
    }

    /// Parses the wire format. Returns `None` on a length that is not a
    /// multiple of 8.
    pub fn from_bytes(bytes: &[u8]) -> Option<LocationMap> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let entries = bytes
            .chunks_exact(8)
            .map(|c| LocationEntry {
                chunk_offset: u32::from_le_bytes(c[..4].try_into().expect("4 bytes")),
                node: u32::from_le_bytes(c[4..].try_into().expect("4 bytes")),
            })
            .collect();
        Some(LocationMap { entries })
    }

    /// The node hosting chunk ordinal `c`, if known.
    pub fn node_of(&self, c: usize) -> Option<usize> {
        self.entries.get(c).map(|e| e.node as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let map = LocationMap {
            entries: vec![
                LocationEntry {
                    chunk_offset: 0,
                    node: 3,
                },
                LocationEntry {
                    chunk_offset: 4096,
                    node: 7,
                },
                LocationEntry {
                    chunk_offset: 123_456,
                    node: 0,
                },
            ],
        };
        let bytes = map.to_bytes();
        assert_eq!(bytes.len() as u64, map.byte_size());
        assert_eq!(bytes.len(), 24);
        assert_eq!(LocationMap::from_bytes(&bytes), Some(map));
    }

    #[test]
    fn bad_length_rejected() {
        assert_eq!(LocationMap::from_bytes(&[0u8; 7]), None);
        assert!(LocationMap::from_bytes(&[]).is_some());
    }

    #[test]
    fn node_lookup() {
        let map = LocationMap {
            entries: vec![LocationEntry {
                chunk_offset: 0,
                node: 5,
            }],
        };
        assert_eq!(map.node_of(0), Some(5));
        assert_eq!(map.node_of(1), None);
    }
}
