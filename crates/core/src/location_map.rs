//! The chunk location map (paper §5, "Metadata Management").
//!
//! Fusion keeps one map per object, tracking which storage node hosts each
//! column chunk. Every entry is 8 bytes — 4 for the chunk's byte offset
//! within the object, 4 for the storage node id — and the map is
//! replicated to `k + 1` nodes so it survives the same number of failures
//! as RS(n, k) data.
//!
//! Since the metadata-plane work (DESIGN.md §16) this paper-format map is
//! no longer the only source of truth: under
//! [`crate::config::PlacementPolicy::Deterministic`] the store keeps a
//! compact [`crate::meta::LayoutRecord`] instead and *computes* locations,
//! keeping this codec for wire compatibility and as the differential
//! oracle the deterministic path is checked against.

use crate::object::ObjectMeta;

/// Typed failures of the location-map codec and builder.
///
/// Before this type existed, `from_bytes` rejected only lengths that were
/// not a multiple of 8 — an entry naming node `7` in a 4-node cluster
/// parsed fine and silently routed reads to a nonexistent node — and
/// `build` truncated 64-bit object offsets with `as u32`, so an object of
/// 4 GiB or more would produce a corrupt (wrapped-offset) map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocationMapError {
    /// Wire payload length is not a multiple of the 8-byte entry size.
    BadLength(usize),
    /// An entry names a node outside the cluster.
    NodeOutOfRange {
        /// Chunk ordinal of the offending entry.
        chunk: usize,
        /// Node id the entry carried.
        node: u32,
        /// Number of nodes in the cluster it was validated against.
        nodes: usize,
    },
    /// A chunk's object offset does not fit the paper's 4-byte field.
    OffsetOverflow {
        /// Chunk ordinal of the offending chunk.
        chunk: usize,
        /// The 64-bit offset that overflowed.
        offset: u64,
    },
    /// A compact layout record carries an impossible erasure code.
    BadCode {
        /// Total shards per stripe.
        n: u8,
        /// Data shards per stripe.
        k: u8,
    },
    /// A compact layout record's exception list is unsorted, duplicated,
    /// or names a chunk beyond the object.
    ExceptionsInvalid {
        /// Index of the first offending exception.
        index: usize,
    },
}

impl std::fmt::Display for LocationMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocationMapError::BadLength(len) => {
                write!(
                    f,
                    "location map payload of {len} bytes is not entry-aligned"
                )
            }
            LocationMapError::NodeOutOfRange { chunk, node, nodes } => write!(
                f,
                "location map entry for chunk {chunk} names node {node} in a {nodes}-node cluster"
            ),
            LocationMapError::OffsetOverflow { chunk, offset } => write!(
                f,
                "chunk {chunk} offset {offset} overflows the 4-byte map field"
            ),
            LocationMapError::BadCode { n, k } => {
                write!(f, "layout record names impossible code ({n}, {k})")
            }
            LocationMapError::ExceptionsInvalid { index } => {
                write!(
                    f,
                    "layout record exception {index} unsorted or out of range"
                )
            }
        }
    }
}

impl std::error::Error for LocationMapError {}

/// One 8-byte entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationEntry {
    /// Byte offset of the chunk within the object (u32, as in the paper).
    pub chunk_offset: u32,
    /// Node id hosting the chunk (first fragment, for split chunks).
    pub node: u32,
}

/// The per-object chunk location map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocationMap {
    /// Entries ordered by chunk ordinal.
    pub entries: Vec<LocationEntry>,
}

impl LocationMap {
    /// Builds the map from object metadata (one entry per chunk).
    ///
    /// # Errors
    ///
    /// [`LocationMapError::OffsetOverflow`] if any chunk starts at or
    /// beyond 4 GiB — the paper's 4-byte offset field cannot address it,
    /// and truncating (the pre-fix behavior) would serve wrong bytes.
    pub fn build(meta: &ObjectMeta) -> Result<LocationMap, LocationMapError> {
        let mut entries = Vec::with_capacity(meta.num_chunks());
        for c in 0..meta.num_chunks() {
            let frags = meta.chunk_fragments(c);
            let first = frags.first();
            let offset = first.map_or(0, |f| f.object_offset);
            let chunk_offset = u32::try_from(offset)
                .map_err(|_| LocationMapError::OffsetOverflow { chunk: c, offset })?;
            entries.push(LocationEntry {
                chunk_offset,
                node: first.map_or(0, |f| f.node as u32),
            });
        }
        Ok(LocationMap { entries })
    }

    /// Serialized size in bytes (8 per entry).
    pub fn byte_size(&self) -> u64 {
        self.entries.len() as u64 * 8
    }

    /// Serializes to the 8-bytes-per-entry wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 8);
        for e in &self.entries {
            out.extend_from_slice(&e.chunk_offset.to_le_bytes());
            out.extend_from_slice(&e.node.to_le_bytes());
        }
        out
    }

    /// Parses the wire format. Returns `None` on a length that is not a
    /// multiple of 8.
    ///
    /// Node ids are *not* validated here — use
    /// [`LocationMap::from_bytes_checked`] at any use site that knows the
    /// cluster size, otherwise an out-of-range id routes reads silently.
    pub fn from_bytes(bytes: &[u8]) -> Option<LocationMap> {
        Self::parse(bytes).ok()
    }

    /// Parses the wire format and validates every entry's node id against
    /// the cluster size.
    ///
    /// # Errors
    ///
    /// [`LocationMapError::BadLength`] on a non-entry-aligned payload,
    /// [`LocationMapError::NodeOutOfRange`] on the first entry naming a
    /// node `>= nodes`.
    pub fn from_bytes_checked(bytes: &[u8], nodes: usize) -> Result<LocationMap, LocationMapError> {
        let map = Self::parse(bytes)?;
        for (chunk, e) in map.entries.iter().enumerate() {
            if e.node as usize >= nodes {
                return Err(LocationMapError::NodeOutOfRange {
                    chunk,
                    node: e.node,
                    nodes,
                });
            }
        }
        Ok(map)
    }

    fn parse(bytes: &[u8]) -> Result<LocationMap, LocationMapError> {
        if !bytes.len().is_multiple_of(8) {
            return Err(LocationMapError::BadLength(bytes.len()));
        }
        let entries = bytes
            .chunks_exact(8)
            .map(|c| LocationEntry {
                chunk_offset: u32::from_le_bytes(c[..4].try_into().expect("4 bytes")),
                node: u32::from_le_bytes(c[4..].try_into().expect("4 bytes")),
            })
            .collect();
        Ok(LocationMap { entries })
    }

    /// The node hosting chunk ordinal `c`, if known.
    pub fn node_of(&self, c: usize) -> Option<usize> {
        self.entries.get(c).map(|e| e.node as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let map = LocationMap {
            entries: vec![
                LocationEntry {
                    chunk_offset: 0,
                    node: 3,
                },
                LocationEntry {
                    chunk_offset: 4096,
                    node: 7,
                },
                LocationEntry {
                    chunk_offset: 123_456,
                    node: 0,
                },
            ],
        };
        let bytes = map.to_bytes();
        assert_eq!(bytes.len() as u64, map.byte_size());
        assert_eq!(bytes.len(), 24);
        assert_eq!(LocationMap::from_bytes(&bytes), Some(map));
    }

    #[test]
    fn bad_length_rejected() {
        assert_eq!(LocationMap::from_bytes(&[0u8; 7]), None);
        assert!(LocationMap::from_bytes(&[]).is_some());
        assert_eq!(
            LocationMap::from_bytes_checked(&[0u8; 7], 9),
            Err(LocationMapError::BadLength(7))
        );
    }

    #[test]
    fn node_lookup() {
        let map = LocationMap {
            entries: vec![LocationEntry {
                chunk_offset: 0,
                node: 5,
            }],
        };
        assert_eq!(map.node_of(0), Some(5));
        assert_eq!(map.node_of(1), None);
    }

    #[test]
    fn checked_parse_rejects_out_of_range_node() {
        let map = LocationMap {
            entries: vec![
                LocationEntry {
                    chunk_offset: 0,
                    node: 2,
                },
                LocationEntry {
                    chunk_offset: 64,
                    node: 9,
                },
            ],
        };
        let bytes = map.to_bytes();
        assert_eq!(LocationMap::from_bytes_checked(&bytes, 10), Ok(map));
        assert_eq!(
            LocationMap::from_bytes_checked(&bytes, 9),
            Err(LocationMapError::NodeOutOfRange {
                chunk: 1,
                node: 9,
                nodes: 9
            })
        );
    }
}
