//! The baseline executor: fetch-and-reassemble at the coordinator
//! (representative of MinIO / Ceph with S3-Select-style evaluation at one
//! node, paper §6 "Baseline").
//!
//! The baseline is granted the same footer optimization the paper gives
//! it: only chunks of columns the query touches are fetched, and row
//! groups whose min/max statistics prove no match are skipped. But because
//! its fixed-block layout splits chunks across nodes, every needed chunk
//! is pulled — fragment by fragment, in compressed form — to the
//! coordinator, where all decoding and evaluation happens.

use super::{
    assemble_result, degraded_fragment_fetch, result_wire_bytes, row_group_may_match, Ctx, Loc,
    QueryOutput,
};
use crate::error::{Result, StoreError};
use crate::query::fusion::concat_parts;
use crate::store::Store;
use fusion_cluster::engine::{CostClass, StepId};
use fusion_format::chunk::decode_column_chunk;
use fusion_format::value::ColumnData;
use fusion_obs::trace::Phase;
use fusion_sql::bitmap::Bitmap;
use fusion_sql::eval::{combine, eval_filter, group_aggregate_decoded, stats_all_match};
use fusion_sql::partial::GroupedAggs;
use fusion_sql::plan::QueryPlan;

/// Executes `plan` by reassembling all needed chunks at the coordinator.
pub fn execute(store: &Store, object: &str, plan: &QueryPlan) -> Result<QueryOutput> {
    let meta = store.object(object)?;
    let fm = meta
        .file_meta
        .as_ref()
        .ok_or_else(|| StoreError::NotAnalytics(object.to_string()))?;
    let coord = store.coordinator_of(object)?;
    let cost = &store.config().cluster.cost;
    // The baseline decodes every fetched chunk at the coordinator; the
    // Snappy share of that decode runs at the configured kernel's rate.
    let csp = store.config().compression_speedup();
    let mut ctx = Ctx::new(cost, store.config().observability);
    let mut pruned = 0usize;
    let mut considered = 0usize;
    let mut cache_misses = 0usize;
    let mut shard_read_bytes = 0u64;

    let arrival = ctx.rpc(Loc::Client, Loc::Node(coord), &[]);
    let plan_step = ctx.cpu(
        Loc::Node(coord),
        cost.query_overhead,
        CostClass::Other,
        &arrival,
    );

    // Columns the query touches.
    let mut needed: Vec<usize> = plan.filter_columns();
    for &c in &plan.projections {
        if !needed.contains(&c) {
            needed.push(c);
        }
    }
    needed.sort_unstable();

    let num_rgs = fm.row_groups.len();
    let mut rg_bitmaps: Vec<Bitmap> = Vec::with_capacity(num_rgs);
    // Decoded chunks cache for this query: (rg, col) -> ColumnData.
    let mut decoded: std::collections::HashMap<(usize, usize), ColumnData> =
        std::collections::HashMap::new();
    let mut eval_frontier: Vec<StepId> = vec![plan_step];

    ctx.trace.enter(Phase::ShardRead, "fetch_stage");
    // Coordinator-side decode + filter CPU is the baseline's "decode"
    // phase on the virtual clock (reads, transfers, retries, and
    // degraded rebuilds tag themselves).
    ctx.phase(Phase::Decode);
    for rg in 0..num_rgs {
        let rows = fm.row_groups[rg].row_count as usize;
        if !row_group_may_match(plan.tree.as_ref(), &plan.filters, &fm.row_groups[rg]) {
            pruned += needed.len();
            considered += needed.len();
            rg_bitmaps.push(Bitmap::with_len(rows));
            continue;
        }
        // Fetch every needed chunk of this row group to the coordinator.
        let mut rg_arrived: Vec<StepId> = Vec::new();
        let mut decode_cost = fusion_cluster::time::Nanos::ZERO;
        for &col_idx in &needed {
            let cm = fm.chunk(rg, col_idx)?;
            let ty = fm.schema.fields()[col_idx].ty;
            let ordinal = meta
                .chunk_ordinal(rg, col_idx)
                .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;

            // Data plane: reassemble + decode at the coordinator. Every
            // fetched chunk is a data-plane read — a "miss" in the
            // conservation invariant (the baseline has no node caches to
            // hit).
            considered += 1;
            cache_misses += 1;
            let chunk_bytes = store.chunk_bytes(object, ordinal)?;
            shard_read_bytes += chunk_bytes.len() as u64;
            let col = decode_column_chunk(&chunk_bytes, ty)?;
            decoded.insert((rg, col_idx), col);

            // Time plane: each fragment is read on its node and shipped to
            // the coordinator in stored (compressed) form; fragments on
            // dead nodes are rebuilt from their stripe's k surviving
            // shards (degraded mode).
            for f in &meta.chunk_fragments(ordinal) {
                if store.blocks().has_block(f.node, f.block) {
                    let req = ctx.rpc(Loc::Node(coord), Loc::Node(f.node), &[plan_step]);
                    let req = ctx.retry(store.retry_penalty(f.node), &req);
                    let read = ctx.disk(f.node, f.len, &req);
                    rg_arrived.extend(ctx.transfer(
                        Loc::Node(f.node),
                        Loc::Node(coord),
                        f.len,
                        &[read],
                    ));
                } else {
                    rg_arrived.push(degraded_fragment_fetch(
                        store,
                        meta,
                        &mut ctx,
                        coord,
                        f,
                        &[plan_step],
                    )?);
                }
            }
            decode_cost += cost.decode_at(cm.plain_size, csp) + cost.eval(cm.value_count);
        }
        if rg_arrived.is_empty() {
            rg_arrived.push(plan_step);
        }
        // Coordinator decodes and evaluates everything for this row group.
        let eval = ctx.cpu(
            Loc::Node(coord),
            decode_cost,
            CostClass::Processing,
            &rg_arrived,
        );
        eval_frontier.push(eval);

        // Data plane: evaluate filters, combine.
        let mut leaf_bitmaps = Vec::with_capacity(plan.filters.len());
        for leaf in &plan.filters {
            let cm = fm.chunk(rg, leaf.column)?;
            if stats_all_match(leaf, cm.min.as_ref(), cm.max.as_ref()) {
                // Stats prove every row matches: skip the scan (the chunk
                // is still fetched above — projections may need it).
                leaf_bitmaps.push(Bitmap::ones_with_len(rows));
                continue;
            }
            let col = decoded
                .get(&(rg, leaf.column))
                .expect("filter column fetched above");
            leaf_bitmaps.push(eval_filter(leaf, col)?);
        }
        let rg_bitmap = match &plan.tree {
            Some(tree) => combine(tree, &leaf_bitmaps)?,
            None => Bitmap::ones_with_len(rows),
        };
        rg_bitmaps.push(rg_bitmap);
    }

    if ctx.trace.enabled() {
        ctx.trace.enter(Phase::StatsPrune, "stats_prune");
        ctx.trace.add_count(pruned as u64);
        ctx.trace.exit();
        ctx.trace.add_count(cache_misses as u64);
        ctx.trace.add_bytes(shard_read_bytes);
    }
    ctx.trace.exit(); // fetch_stage

    let total_rows: usize = fm.row_groups.iter().map(|g| g.row_count as usize).sum();
    // Selectivity is measured before any LIMIT: it is the filter-stage
    // statistic the Cost Equation reasons about.
    let measured_matches: usize = rg_bitmaps.iter().map(Bitmap::count_ones).sum();
    let selectivity = if total_rows == 0 {
        0.0
    } else {
        measured_matches as f64 / total_rows as f64
    };
    super::apply_limit(plan, &mut rg_bitmaps);
    let total_matches: usize = rg_bitmaps.iter().map(Bitmap::count_ones).sum();

    // Grouped queries: the baseline has already reassembled every needed
    // chunk at the coordinator, so it groups decoded values there —
    // per row group, merged in row-group order (the same merge order the
    // pushdown executor uses, so float results are bit-identical).
    if plan.grouped() {
        ctx.phase(Phase::GroupedAggregate);
        ctx.trace
            .enter(Phase::GroupedAggregate, "grouped_aggregate_stage");
        let mut merged: Option<GroupedAggs> = None;
        let mut group_cost = fusion_cluster::time::Nanos::ZERO;
        for (rg, filter) in rg_bitmaps.iter().enumerate() {
            let matches = filter.count_ones();
            if matches == 0 {
                continue;
            }
            let keys: Vec<&ColumnData> = plan
                .group_by
                .iter()
                .map(|c| decoded.get(&(rg, *c)).expect("key column fetched above"))
                .collect();
            let aggs: Vec<_> = plan
                .aggregates
                .iter()
                .map(|s| {
                    (
                        s.func,
                        s.column.map(|c| {
                            decoded
                                .get(&(rg, c))
                                .expect("aggregate column fetched above")
                        }),
                    )
                })
                .collect();
            let rg_grouped = group_aggregate_decoded(&keys, &aggs, filter)?;
            group_cost += cost.eval(matches as u64 * plan.aggregates.len().max(1) as u64)
                + cost.agg_state(rg_grouped.wire_bytes());
            match &mut merged {
                Some(m) => m.merge(&rg_grouped)?,
                slot => *slot = Some(rg_grouped),
            }
        }
        let grouped = merged.unwrap_or_else(|| GroupedAggs::new(Vec::new()));
        if ctx.trace.enabled() {
            ctx.trace.add_count(grouped.len() as u64);
            ctx.trace.add_bytes(grouped.wire_bytes());
        }
        ctx.trace.exit(); // grouped_aggregate_stage

        let result = super::assemble_grouped_result(plan, &fm.schema, grouped, total_matches)?;
        let reply_bytes = result_wire_bytes(&result);
        let assemble = ctx.cpu(
            Loc::Node(coord),
            group_cost + cost.project(reply_bytes),
            CostClass::Other,
            &eval_frontier,
        );
        ctx.transfer(Loc::Node(coord), Loc::Client, reply_bytes, &[assemble]);

        debug_assert_eq!(
            pruned + cache_misses,
            considered,
            "chunk accounting must conserve"
        );
        return Ok(QueryOutput {
            result,
            selectivity,
            workflow: ctx.wf,
            net_bytes: ctx.net_bytes,
            decisions: Vec::new(),
            pruned_chunks: pruned,
            cache_hits: 0,
            cache_misses,
            chunks_considered: considered,
            trace: ctx.trace,
        });
    }

    // Project locally at the coordinator.
    ctx.phase(Phase::Project);
    ctx.trace.enter(Phase::Project, "projection_stage");
    let mut projected: Vec<ColumnData> = Vec::with_capacity(plan.projections.len());
    let mut project_bytes = 0u64;
    for &col_idx in &plan.projections {
        let ty = fm.schema.fields()[col_idx].ty;
        let mut parts = Vec::new();
        // `rg` also indexes the footer metadata, not just the bitmaps.
        #[allow(clippy::needless_range_loop)]
        for rg in 0..num_rgs {
            let matches: Vec<usize> = rg_bitmaps[rg].ones().collect();
            if matches.is_empty() {
                continue;
            }
            let col = decoded
                .get(&(rg, col_idx))
                .expect("projection column fetched above");
            let part = col.take(&matches);
            project_bytes += part.plain_size() as u64;
            parts.push(part);
        }
        projected.push(concat_parts(ty, parts));
    }

    if ctx.trace.enabled() {
        ctx.trace.add_bytes(project_bytes);
    }
    ctx.trace.exit(); // projection_stage

    let result = assemble_result(plan, &projected, total_matches)?;
    let reply_bytes = result_wire_bytes(&result);
    let assemble = ctx.cpu(
        Loc::Node(coord),
        cost.project(project_bytes + reply_bytes),
        CostClass::Other,
        &eval_frontier,
    );
    ctx.transfer(Loc::Node(coord), Loc::Client, reply_bytes, &[assemble]);

    debug_assert_eq!(
        pruned + cache_misses,
        considered,
        "chunk accounting must conserve"
    );
    Ok(QueryOutput {
        result,
        selectivity,
        workflow: ctx.wf,
        net_bytes: ctx.net_bytes,
        decisions: Vec::new(),
        pruned_chunks: pruned,
        // The baseline reassembles at the coordinator and never touches
        // the node-local chunk caches: every fetched chunk is a miss.
        cache_hits: 0,
        cache_misses,
        chunks_considered: considered,
        trace: ctx.trace,
    })
}
