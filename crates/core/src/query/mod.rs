//! Query execution: the two-stage adaptive pushdown engine (Fusion) and
//! the fetch-and-reassemble engine (baseline).
//!
//! Both executors run the **data plane for real** — they decode actual
//! chunk bytes, evaluate predicates, and materialize results — while
//! simultaneously building a [`Workflow`] that models where each byte
//! travels and how long each stage occupies disks, CPUs, and NICs. The
//! two executors must produce identical [`QueryResult`]s; only their
//! workflows (and therefore latency and traffic) differ.

pub mod baseline;
pub mod fusion;

use crate::error::{Result, StoreError};
use crate::store::Store;
use fusion_cluster::engine::{CostClass, Engine, ResourceKey, RunReport, StepId, Workflow};
use fusion_cluster::spec::CostModel;
use fusion_cluster::time::Nanos;
use fusion_format::value::{ColumnData, Value};
use fusion_obs::trace::{Phase, Trace};
use fusion_sql::plan::{BoolTree, FilterLeaf, QueryPlan};

/// The rows and aggregates a query returns.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Number of rows that satisfied the predicate.
    pub row_count: usize,
    /// Output projection columns `(name, filtered values)`.
    pub columns: Vec<(String, ColumnData)>,
    /// Output aggregates `(label, value)`.
    pub aggregates: Vec<(String, Value)>,
}

/// The per-chunk projection pushdown decision (paper §4.3 Cost Equation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionDecision {
    /// Row group of the chunk.
    pub row_group: usize,
    /// Column index of the chunk.
    pub column: usize,
    /// `selectivity × compressibility` for this chunk, computed with the
    /// chunk's exact match count: uncompressed selected bytes over
    /// encoded chunk bytes. Pushed down iff `< 1`.
    pub cost_product: f64,
    /// Whether the projection was pushed down.
    pub pushed_down: bool,
}

/// Everything a query execution produces.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The result rows/aggregates (identical across executors).
    pub result: QueryResult,
    /// Exact query selectivity measured at the end of the filter stage.
    pub selectivity: f64,
    /// The virtual-time workflow modelling this execution.
    pub workflow: Workflow,
    /// Bytes moved over the network.
    pub net_bytes: u64,
    /// Per-chunk projection decisions (empty for the baseline).
    pub decisions: Vec<ProjectionDecision>,
    /// Chunks skipped via footer min/max statistics (no-match **and**
    /// all-match proofs: either way the chunk is never read).
    pub pruned_chunks: usize,
    /// Chunk accesses this query served from the encoded-chunk cache.
    pub cache_hits: usize,
    /// Chunk accesses this query that read (and parsed) from the data
    /// plane — healthy misses populate the cache; degraded and
    /// coordinator-side reads bypass it but still count here.
    pub cache_misses: usize,
    /// Every chunk access the executor considered. Conservation
    /// invariant, healthy or degraded, for both executors:
    /// `pruned_chunks + cache_hits + cache_misses == chunks_considered`.
    pub chunks_considered: usize,
    /// Structured span tree recorded during execution. A no-op recorder
    /// (empty tree) unless [`crate::config::StoreConfig::observability`]
    /// is set.
    pub trace: Trace,
}

impl Store {
    /// Runs a SQL query; the `FROM` table names the object.
    ///
    /// # Errors
    ///
    /// Parse/plan failures, unknown objects, non-analytics objects, or
    /// data-plane failures.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        let q = fusion_sql::parser::parse(sql)?;
        self.query_as(&q.table, sql)
    }

    /// Runs a SQL query against an explicit object, ignoring the `FROM`
    /// name (used when one logical table is stored as several object
    /// copies).
    ///
    /// # Errors
    ///
    /// See [`Store::query`].
    pub fn query_as(&self, object: &str, sql: &str) -> Result<QueryOutput> {
        crate::store::validate_key(object)?;
        let meta = self.object(object)?;
        let fm = meta
            .file_meta
            .as_ref()
            .ok_or_else(|| StoreError::NotAnalytics(object.to_string()))?;
        let q = fusion_sql::parser::parse(sql)?;
        let plan = fusion_sql::plan::plan(&q, &fm.schema)?;
        match self.query_mode() {
            crate::config::QueryMode::Reassemble => baseline::execute(self, object, &plan),
            crate::config::QueryMode::AdaptivePushdown => {
                fusion::execute(self, object, &plan, true)
            }
            crate::config::QueryMode::AlwaysPushdown => fusion::execute(self, object, &plan, false),
        }
    }

    /// Runs workflows on this store's cluster spec (closed loop) and
    /// returns the engine report. Straggler multipliers mirrored from
    /// the fault injector apply to every step on a slowed node.
    pub fn simulate(&self, clients: Vec<Vec<Workflow>>) -> RunReport {
        Engine::new(self.config().cluster.clone())
            .with_slowdowns(self.slowdowns().clone())
            .run_closed_loop(clients)
    }

    /// Simulates a single workflow alone on the cluster and returns its
    /// latency.
    pub fn simulate_solo(&self, workflow: &Workflow) -> Nanos {
        self.simulate(vec![vec![workflow.clone()]]).stats[0].latency
    }

    /// Compiles a query mix — `(object, sql)` pairs — into workflow
    /// templates for the traffic generator
    /// ([`fusion_cluster::traffic::TrafficGen::generate`]). Each query
    /// executes once on the data plane here; the generator then clones
    /// the resulting workflows into timestamped submission streams.
    ///
    /// # Errors
    ///
    /// See [`Store::query_as`].
    pub fn query_mix(&self, queries: &[(&str, &str)]) -> Result<Vec<Workflow>> {
        queries
            .iter()
            .map(|(object, sql)| Ok(self.query_as(object, sql)?.workflow))
            .collect()
    }

    /// Runs a multi-tenant open-loop job stream on this store's cluster
    /// spec under `policy`, mirroring fault-injector straggler
    /// multipliers — the traffic-engine counterpart of
    /// [`Store::simulate`]. Admission limits and tenant weights beyond
    /// the defaults are configured by building an
    /// [`Engine`] directly.
    pub fn simulate_jobs(
        &self,
        jobs: Vec<fusion_cluster::engine::Job>,
        policy: fusion_cluster::engine::SchedulingPolicy,
    ) -> RunReport {
        Engine::new(self.config().cluster.clone())
            .with_slowdowns(self.slowdowns().clone())
            .with_scheduling(policy)
            .run_jobs(jobs)
    }
}

/// A location in the cluster for transfer modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    /// A storage node.
    Node(usize),
    /// The client machine.
    Client,
}

impl Loc {
    fn tx(self) -> ResourceKey {
        match self {
            Loc::Node(n) => ResourceKey::NicTx(n),
            Loc::Client => ResourceKey::ClientNicTx,
        }
    }

    fn rx(self) -> ResourceKey {
        match self {
            Loc::Node(n) => ResourceKey::NicRx(n),
            Loc::Client => ResourceKey::ClientNicRx,
        }
    }

    fn cpu(self) -> ResourceKey {
        match self {
            Loc::Node(n) => ResourceKey::Cpu(n),
            Loc::Client => ResourceKey::ClientCpu,
        }
    }
}

/// Workflow construction context shared by both executors.
#[derive(Debug)]
pub(crate) struct Ctx<'a> {
    pub cost: &'a CostModel,
    pub wf: Workflow,
    pub net_bytes: u64,
    /// (stripe, lost bin) → decode step of an already-modelled degraded
    /// reconstruction, so several fragments of one lost bin pay for the
    /// repair-set rebuild only once per query.
    pub degraded: std::collections::HashMap<(usize, usize), StepId>,
    /// Per-query span recorder (a strict no-op unless the store's
    /// observability flag is on).
    pub trace: Trace,
}

impl<'a> Ctx<'a> {
    pub fn new(cost: &'a CostModel, observability: bool) -> Ctx<'a> {
        Ctx {
            cost,
            wf: Workflow::new(),
            net_bytes: 0,
            degraded: std::collections::HashMap::new(),
            trace: if observability {
                Trace::new("query")
            } else {
                Trace::disabled()
            },
        }
    }

    /// Sets the ambient phase tagged onto subsequently built steps,
    /// returning the previous phase (for save/restore nesting).
    pub fn phase(&mut self, phase: Phase) -> Phase {
        self.wf.set_phase(phase)
    }

    /// Models a transfer of `bytes` from `from` to `to`; local transfers
    /// are free (the paper's nodes are storage and coordinator at once).
    ///
    /// The sender's NIC is held for the wire time; the RPC overhead (framing
    /// plus propagation) is a pure delay that does not occupy the NIC; the
    /// receiver's NIC is then held for the wire time. Returns the
    /// dependency frontier for successors.
    pub fn transfer(&mut self, from: Loc, to: Loc, bytes: u64, deps: &[StepId]) -> Vec<StepId> {
        if from == to {
            return deps.to_vec();
        }
        // Wire time is its own phase — except inside a degraded rebuild,
        // whose survivor-shard traffic stays attributed to the repair.
        let prev = self.wf.phase();
        if prev != Phase::DegradedReconstruct {
            self.wf.set_phase(Phase::Network);
        }
        let tx = self
            .wf
            .step(from.tx(), self.cost.wire(bytes), CostClass::Network, deps);
        self.wf.transfer_bytes(tx, bytes);
        self.net_bytes += bytes;
        let lat = self.wf.step(
            ResourceKey::Delay,
            self.cost.rpc_overhead,
            CostClass::Network,
            &[tx],
        );
        let rx = self
            .wf
            .step(to.rx(), self.cost.wire(bytes), CostClass::Network, &[lat]);
        // Kernel/TCP processing at both endpoints: occupies CPU cores (the
        // paper's "network processing CPU") without extending the transfer
        // chain — modelled as work concurrent with the transfer.
        let net_cpu = self.cost.net_cpu(bytes);
        if net_cpu > Nanos::ZERO {
            self.wf.step(from.cpu(), net_cpu, CostClass::Network, &[]);
            self.wf.step(to.cpu(), net_cpu, CostClass::Network, &[]);
        }
        self.wf.set_phase(prev);
        vec![rx]
    }

    /// Models a control-plane RPC (sub-query dispatch, fetch request):
    /// pure latency, no payload — constant-size messages are negligible on
    /// the wire and must not inherit the data-plane's scaled byte costs.
    pub fn rpc(&mut self, from: Loc, to: Loc, deps: &[StepId]) -> Vec<StepId> {
        if from == to {
            return deps.to_vec();
        }
        let prev = self.wf.phase();
        if prev != Phase::DegradedReconstruct {
            self.wf.set_phase(Phase::Network);
        }
        let lat = self.wf.step(
            ResourceKey::Delay,
            self.cost.rpc_overhead,
            CostClass::Network,
            deps,
        );
        self.wf.set_phase(prev);
        vec![lat]
    }

    /// Models a disk read of `bytes` on `node`.
    pub fn disk(&mut self, node: usize, bytes: u64, deps: &[StepId]) -> StepId {
        let prev = self.wf.phase();
        if prev != Phase::DegradedReconstruct {
            self.wf.set_phase(Phase::ShardRead);
        }
        let id = self.wf.step(
            ResourceKey::Disk(node),
            self.cost.disk_read(bytes),
            CostClass::DiskRead,
            deps,
        );
        self.wf.set_phase(prev);
        id
    }

    /// Models CPU work at `loc`.
    pub fn cpu(&mut self, loc: Loc, dur: Nanos, class: CostClass, deps: &[StepId]) -> StepId {
        self.wf.step(loc.cpu(), dur, class, deps)
    }

    /// Charges the retry-policy delay ahead of a dispatch to a flaky
    /// (recently revived) node: `penalty` is the wall time burned on
    /// timed-out attempts before one got through. Free for healthy
    /// nodes.
    pub fn retry(&mut self, penalty: Nanos, deps: &[StepId]) -> Vec<StepId> {
        if penalty == Nanos::ZERO {
            return deps.to_vec();
        }
        let prev = self.wf.set_phase(Phase::Retry);
        let s = self
            .wf
            .step(ResourceKey::Delay, penalty, CostClass::Network, deps);
        self.wf.set_phase(prev);
        if self.trace.enabled() {
            self.trace.enter(Phase::Retry, "retry_penalty");
            self.trace.add_count(1);
            self.trace.exit();
        }
        vec![s]
    }
}

/// Time-plane model of a degraded fragment read (the fragment's block is
/// on a dead node or lost): the coordinator pulls the code's cheapest
/// repair set for the lost bin — any `k` survivors for Reed-Solomon, the
/// lost shard's local group for LRC — decodes on its CPU, and serves the
/// fragment from the rebuilt bin. Cached per (stripe, bin) in
/// [`Ctx::degraded`].
///
/// # Errors
///
/// [`StoreError::Internal`] when the fragment maps to no stripe or too
/// few shards survive (the data plane fails first in practice).
pub(crate) fn degraded_fragment_fetch(
    store: &Store,
    meta: &crate::object::ObjectMeta,
    ctx: &mut Ctx<'_>,
    coord: usize,
    frag: &crate::object::ChunkFragment,
    deps: &[StepId],
) -> Result<StepId> {
    let (si, bi) = store
        .stripe_of(meta, frag.block)
        .ok_or_else(|| StoreError::Internal("fragment without stripe".into()))?;
    if let Some(&done) = ctx.degraded.get(&(si, bi)) {
        return Ok(done);
    }
    let sp = &meta.placement[si];
    let sources = store.surviving_repair_shards(sp, bi).ok_or_else(|| {
        StoreError::Internal(format!(
            "stripe {si} has too few shards to rebuild bin {bi}"
        ))
    })?;
    // Every step of the rebuild — source reads, wire time, decode — is
    // attributed to the degraded-reconstruct phase.
    let prev = ctx.phase(Phase::DegradedReconstruct);
    if ctx.trace.enabled() {
        ctx.trace
            .enter(Phase::DegradedReconstruct, "degraded_reconstruct");
        ctx.trace.add_count(sources.len() as u64);
        ctx.trace.add_bytes(sp.width * sources.len() as u64);
        ctx.trace.exit();
    }
    let mut arrived = Vec::new();
    for &i in &sources {
        let src = sp.nodes[i];
        let req = ctx.rpc(Loc::Node(coord), Loc::Node(src), deps);
        let req = ctx.retry(store.retry_penalty(src), &req);
        let read = ctx.disk(src, sp.width, &req);
        arrived.extend(ctx.transfer(Loc::Node(src), Loc::Node(coord), sp.width, &[read]));
    }
    let decode_cost = ctx.cost.ec_at(
        sp.width * sources.len() as u64,
        store.config().codec_speedup(),
    );
    let decode = ctx.cpu(
        Loc::Node(coord),
        decode_cost,
        CostClass::Processing,
        &arrived,
    );
    ctx.phase(prev);
    ctx.degraded.insert((si, bi), decode);
    Ok(decode)
}

/// Applies a LIMIT by clearing every match bit after the first `limit`
/// set bits (row order across row groups). Aggregate-bearing plans keep
/// their bitmaps intact: SQL LIMIT caps output rows, and aggregates
/// summarize all matches into one row anyway.
pub(crate) fn apply_limit(plan: &QueryPlan, rg_bitmaps: &mut [fusion_sql::bitmap::Bitmap]) {
    let Some(limit) = plan.limit else { return };
    if !plan.aggregates.is_empty() {
        return;
    }
    let mut remaining = limit;
    for bm in rg_bitmaps.iter_mut() {
        if remaining == 0 {
            *bm = fusion_sql::bitmap::Bitmap::with_len(bm.len());
            continue;
        }
        let ones: Vec<usize> = bm.ones().collect();
        if ones.len() <= remaining {
            remaining -= ones.len();
            continue;
        }
        let mut truncated = fusion_sql::bitmap::Bitmap::with_len(bm.len());
        for &i in ones.iter().take(remaining) {
            truncated.set(i);
        }
        *bm = truncated;
        remaining = 0;
    }
}

/// Conservative "could this row group contain matches?" over the boolean
/// tree, using per-chunk min/max stats. `true` means "cannot rule out".
pub(crate) fn row_group_may_match(
    tree: Option<&BoolTree>,
    filters: &[FilterLeaf],
    rg_meta: &fusion_format::footer::RowGroupMeta,
) -> bool {
    fn rec(t: &BoolTree, filters: &[FilterLeaf], rg: &fusion_format::footer::RowGroupMeta) -> bool {
        match t {
            BoolTree::Leaf(id) => {
                let leaf = &filters[*id];
                let cm = &rg.chunks[leaf.column];
                fusion_sql::eval::stats_may_match(leaf, cm.min.as_ref(), cm.max.as_ref())
            }
            BoolTree::And(a, b) => rec(a, filters, rg) && rec(b, filters, rg),
            BoolTree::Or(a, b) => rec(a, filters, rg) || rec(b, filters, rg),
            // NOT over a may-match bound is not a may-match bound; stay
            // conservative.
            BoolTree::Not(_) => true,
        }
    }
    match tree {
        None => true,
        Some(t) => rec(t, filters, rg_meta),
    }
}

/// Builds the final result (projected output columns + aggregates) from
/// filtered projection data. Shared by both executors so their outputs are
/// identical by construction.
pub(crate) fn assemble_result(
    plan: &QueryPlan,
    projected: &[ColumnData],
    total_matches: usize,
) -> Result<QueryResult> {
    use fusion_sql::plan::OutputItem;
    let mut columns = Vec::new();
    let mut aggregates = Vec::new();
    for out in &plan.outputs {
        match out {
            OutputItem::Projection(pos) => {
                columns.push((plan.projection_names[*pos].clone(), projected[*pos].clone()));
            }
            OutputItem::Aggregate(ai) => {
                let spec = &plan.aggregates[*ai];
                let data = spec.column.map(|schema_idx| {
                    let pos = plan
                        .projections
                        .iter()
                        .position(|&c| c == schema_idx)
                        .expect("aggregate argument was planned as a projection");
                    &projected[pos]
                });
                let v = fusion_sql::eval::eval_aggregate(spec, total_matches, data)?;
                let label = match &spec.column_name {
                    Some(c) => format!("{}({})", spec.func, c),
                    None => format!("{}(*)", spec.func),
                };
                aggregates.push((label, v));
            }
        }
    }
    Ok(QueryResult {
        row_count: total_matches,
        columns,
        aggregates,
    })
}

/// Builds the final result of a *grouped* query from merged keyed
/// aggregate state. Shared by both executors so their outputs are
/// identical by construction: groups are emitted in [`GroupKey`] sort
/// order (a total order, floats by `total_cmp`), key columns follow the
/// schema's types, and each aggregate becomes one typed output column
/// labelled like `sum(price)`.
///
/// `row_count` stays the *matched row* count (the grouped rows are the
/// `columns`), mirroring how aggregate-only queries already report it.
pub(crate) fn assemble_grouped_result(
    plan: &QueryPlan,
    schema: &fusion_format::schema::Schema,
    grouped: fusion_sql::partial::GroupedAggs,
    total_matches: usize,
) -> Result<QueryResult> {
    use fusion_format::schema::LogicalType;
    use fusion_sql::ast::AggFunc;
    use fusion_sql::plan::OutputItem;

    // (key, finalized states) rows in canonical key order.
    let rows = grouped.into_sorted();

    fn column_from(ty: LogicalType, values: Vec<Value>) -> Result<ColumnData> {
        match ty {
            LogicalType::Int64 | LogicalType::Date => Ok(ColumnData::Int64(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Int(x) => Ok(x),
                        other => Err(StoreError::Internal(format!(
                            "expected int in grouped output, got {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?,
            )),
            LogicalType::Float64 => Ok(ColumnData::Float64(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Float(x) => Ok(x),
                        // Integer partials may finalize under a float
                        // label (e.g. MIN over a Date key) — never the
                        // other way around.
                        Value::Int(x) => Ok(x as f64),
                        other => Err(StoreError::Internal(format!(
                            "expected float in grouped output, got {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?,
            )),
            LogicalType::Utf8 => Ok(ColumnData::Utf8(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => Ok(s),
                        other => Err(StoreError::Internal(format!(
                            "expected string in grouped output, got {other:?}"
                        ))),
                    })
                    .collect::<Result<_>>()?,
            )),
        }
    }

    let mut columns = Vec::new();
    for out in &plan.outputs {
        match out {
            OutputItem::Projection(pos) => {
                let schema_idx = plan.projections[*pos];
                let key_pos = plan
                    .group_by
                    .iter()
                    .position(|&c| c == schema_idx)
                    .ok_or_else(|| {
                        StoreError::Internal("selected column is not a group key".into())
                    })?;
                let values: Vec<Value> = rows.iter().map(|(k, _)| k.0[key_pos].clone()).collect();
                columns.push((
                    plan.projection_names[*pos].clone(),
                    column_from(schema.fields()[schema_idx].ty, values)?,
                ));
            }
            OutputItem::Aggregate(ai) => {
                let spec = &plan.aggregates[*ai];
                let arg_ty = spec.column.map(|idx| schema.fields()[idx].ty);
                let out_ty = match spec.func {
                    AggFunc::Count => LogicalType::Int64,
                    AggFunc::Avg => LogicalType::Float64,
                    AggFunc::Sum => match arg_ty {
                        Some(LogicalType::Float64) => LogicalType::Float64,
                        _ => LogicalType::Int64,
                    },
                    AggFunc::Min | AggFunc::Max => arg_ty.unwrap_or(LogicalType::Int64),
                };
                let values: Vec<Value> = rows.iter().map(|(_, p)| p[*ai].finalize()).collect();
                let label = match &spec.column_name {
                    Some(c) => format!("{}({})", spec.func, c),
                    None => format!("{}(*)", spec.func),
                };
                columns.push((label, column_from(out_ty, values)?));
            }
        }
    }
    Ok(QueryResult {
        row_count: total_matches,
        columns,
        aggregates: Vec::new(),
    })
}

/// Plain-encoding size of the final result payload sent back to the
/// client.
pub(crate) fn result_wire_bytes(result: &QueryResult) -> u64 {
    let cols: u64 = result
        .columns
        .iter()
        .map(|(_, c)| c.plain_size() as u64)
        .sum();
    let aggs = result.aggregates.len() as u64 * 16;
    cols + aggs + 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_sql::ast::CmpOp;
    use fusion_sql::bitmap::Bitmap;
    use fusion_sql::plan::QueryPlan;

    fn plan_with_limit(limit: Option<usize>, aggregates: bool) -> QueryPlan {
        QueryPlan {
            table: "t".into(),
            filters: vec![],
            tree: None,
            projections: vec![0],
            projection_names: vec!["x".into()],
            aggregates: if aggregates {
                vec![fusion_sql::plan::AggregateSpec {
                    func: fusion_sql::ast::AggFunc::Count,
                    column: None,
                    column_name: None,
                }]
            } else {
                vec![]
            },
            outputs: vec![fusion_sql::plan::OutputItem::Projection(0)],
            group_by: vec![],
            group_by_names: vec![],
            limit,
        }
    }

    #[test]
    fn apply_limit_truncates_across_row_groups() {
        let mut bms = vec![
            (0..10).map(|i| i % 2 == 0).collect::<Bitmap>(), // 5 ones
            (0..10).map(|i| i < 4).collect::<Bitmap>(),      // 4 ones
        ];
        apply_limit(&plan_with_limit(Some(7), false), &mut bms);
        assert_eq!(bms[0].count_ones(), 5);
        assert_eq!(bms[1].count_ones(), 2);
        assert_eq!(bms[1].ones().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn apply_limit_zero_and_none() {
        let mk = || vec![(0..8).map(|_| true).collect::<Bitmap>()];
        let mut bms = mk();
        apply_limit(&plan_with_limit(Some(0), false), &mut bms);
        assert_eq!(bms[0].count_ones(), 0);
        let mut bms = mk();
        apply_limit(&plan_with_limit(None, false), &mut bms);
        assert_eq!(bms[0].count_ones(), 8);
    }

    #[test]
    fn apply_limit_skips_aggregate_plans() {
        let mut bms = vec![(0..8).map(|_| true).collect::<Bitmap>()];
        apply_limit(&plan_with_limit(Some(1), true), &mut bms);
        assert_eq!(bms[0].count_ones(), 8);
    }
    use fusion_format::encoding::Encoding;
    use fusion_format::footer::{ChunkMeta, RowGroupMeta};

    fn leaf(column: usize, op: CmpOp, constant: Value) -> FilterLeaf {
        FilterLeaf {
            id: 0,
            column,
            column_name: format!("c{column}"),
            op,
            constant,
        }
    }

    fn rg(mins: &[i64], maxs: &[i64]) -> RowGroupMeta {
        RowGroupMeta {
            row_count: 10,
            chunks: mins
                .iter()
                .zip(maxs)
                .map(|(&mn, &mx)| ChunkMeta {
                    offset: 0,
                    len: 10,
                    value_count: 10,
                    plain_size: 80,
                    encoding: Encoding::Plain,
                    min: Some(Value::Int(mn)),
                    max: Some(Value::Int(mx)),
                })
                .collect(),
        }
    }

    #[test]
    fn rg_pruning_logic() {
        let filters = vec![leaf(0, CmpOp::Gt, Value::Int(100))];
        let tree = BoolTree::Leaf(0);
        // max 50 < 100: cannot match.
        assert!(!row_group_may_match(
            Some(&tree),
            &filters,
            &rg(&[0], &[50])
        ));
        // max 150: may match.
        assert!(row_group_may_match(
            Some(&tree),
            &filters,
            &rg(&[0], &[150])
        ));
        // No predicate: always may match.
        assert!(row_group_may_match(None, &filters, &rg(&[0], &[50])));
        // NOT stays conservative.
        let nt = BoolTree::Not(Box::new(BoolTree::Leaf(0)));
        assert!(row_group_may_match(Some(&nt), &filters, &rg(&[0], &[50])));
    }

    #[test]
    fn and_or_pruning() {
        let filters = vec![
            leaf(0, CmpOp::Gt, Value::Int(100)),
            leaf(1, CmpOp::Lt, Value::Int(5)),
        ];
        let and = BoolTree::And(Box::new(BoolTree::Leaf(0)), Box::new(BoolTree::Leaf(1)));
        let or = BoolTree::Or(Box::new(BoolTree::Leaf(0)), Box::new(BoolTree::Leaf(1)));
        // col0 in [0,50] can't be >100; col1 in [0,50] may be <5.
        let meta = rg(&[0, 0], &[50, 50]);
        assert!(!row_group_may_match(Some(&and), &filters, &meta));
        assert!(row_group_may_match(Some(&or), &filters, &meta));
    }
}
