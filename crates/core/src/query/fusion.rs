//! Fusion's two-stage, fine-grained adaptive pushdown executor (paper
//! §4.3 and §5).
//!
//! **Filter stage** — every filter comparison is dispatched to the node
//! hosting the relevant column chunk (FAC guarantees the chunk is whole).
//! The node serves the chunk from its encoded-chunk cache (or reads and
//! parses it on a miss), scans it in situ with the encoded-domain kernels
//! (`eval_filter_encoded`: dictionary-mask + RLE-span + word-batched
//! loops), and returns a Snappy-compressed bitmap. Chunks whose footer
//! min/max statistics prove no match — or prove *every* row matches — are
//! skipped entirely. The independent per-chunk scans fan out across the
//! store's worker pool with the same serial-assemble / parallel-compute /
//! serial-apply discipline as Put and scrub.
//!
//! **Projection stage** — the coordinator, now knowing the exact
//! selectivity, applies the Cost Equation per chunk:
//! `selectivity × compressibility < 1` → push the projection down (the
//! node sends only the selected values, uncompressed); otherwise fetch the
//! compressed chunk and project locally at the coordinator.

use super::{
    assemble_result, degraded_fragment_fetch, result_wire_bytes, row_group_may_match, Ctx, Loc,
    ProjectionDecision, QueryOutput, QueryResult,
};
use crate::error::{Result, StoreError};
use crate::store::Store;
use fusion_cluster::engine::{CostClass, StepId};
use fusion_format::chunk::{decode_column_chunk, read_encoded_chunk, EncodedChunk};
use fusion_format::schema::LogicalType;
use fusion_format::value::ColumnData;
use fusion_obs::trace::Phase;
use fusion_sql::bitmap::Bitmap;
use fusion_sql::eval::{
    combine, eval_filter, eval_filter_encoded, stats_all_match, stats_may_match,
};
use fusion_sql::plan::{FilterLeaf, QueryPlan};
use std::sync::Arc;

/// One healthy chunk's filter-scan work unit: assembled serially, scanned
/// on a pool worker, applied serially. Everything the worker needs lives
/// inside the job — no shared mutable state on the hot path.
struct ScanTask {
    rg: usize,
    leaf_idx: usize,
    ordinal: usize,
    node: usize,
    ty: LogicalType,
    cm_len: u64,
    cm_plain: u64,
    cm_count: u64,
    /// Cache hit: the resident view (raw bytes stay empty).
    cached: Option<Arc<EncodedChunk>>,
    /// Cache miss: the chunk bytes read from the data plane.
    raw: Vec<u8>,
    out: Option<Result<(Arc<EncodedChunk>, Bitmap)>>,
}

/// Phase-2 worker body: parse the chunk on a miss, then scan it with the
/// encoded-domain kernels (or the decode-then-filter ablation).
fn scan_one(t: &ScanTask, leaf: &FilterLeaf, encoded: bool) -> Result<(Arc<EncodedChunk>, Bitmap)> {
    let chunk = match &t.cached {
        Some(c) => c.clone(),
        None => Arc::new(read_encoded_chunk(&t.raw, t.ty)?),
    };
    let bm = if encoded {
        eval_filter_encoded(leaf, &chunk)?
    } else {
        eval_filter(leaf, &chunk.decode()?)?
    };
    Ok((chunk, bm))
}

/// Executes `plan` with pushdown. `adaptive == false` pushes every
/// projection down unconditionally (the paper's always-on ablation).
pub fn execute(
    store: &Store,
    object: &str,
    plan: &QueryPlan,
    adaptive: bool,
) -> Result<QueryOutput> {
    let meta = store.object(object)?;
    let fm = meta
        .file_meta
        .as_ref()
        .ok_or_else(|| StoreError::NotAnalytics(object.to_string()))?;
    let coord = store.coordinator_of(object)?;
    let cost = &store.config().cluster.cost;
    let mut ctx = Ctx::new(cost, store.config().observability);
    let mut pruned = 0usize;
    let mut considered = 0usize;

    // Client issues the query.
    let arrival = ctx.rpc(Loc::Client, Loc::Node(coord), &[]);
    let plan_step = ctx.cpu(
        Loc::Node(coord),
        cost.query_overhead,
        CostClass::Other,
        &arrival,
    );

    let num_rgs = fm.row_groups.len();

    // ---- Filter stage ----
    let encoded = store.config().encoded_scan;
    let speedup = store.config().scan_speedup();
    // Compression-kernel plane: scales the Snappy share of decode
    // (page decompression) and the bitmap compression before shipping.
    let csp = store.config().compression_speedup();
    let mut filter_frontier: Vec<StepId> = vec![plan_step];
    let mut bitmap_wire_total = 0u64;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut shard_read_bytes = 0u64;
    // Every CPU eval built in the filter stage is filter-phase work on
    // the virtual clock (reads, transfers, retries, and degraded
    // rebuilds tag themselves).
    ctx.phase(Phase::Filter);
    ctx.trace.enter(Phase::Filter, "filter_stage");
    // Chunks already read + decoded on their node during the filter
    // stage. The projection stage reuses them instead of re-reading, which
    // is what makes Fusion's disk/processing time match the baseline's
    // (paper Fig. 13c: "both systems spend approximately the same amount
    // of time on disk read and chunk processing").
    let mut decoded_on: std::collections::HashMap<usize, (usize, StepId)> =
        std::collections::HashMap::new();

    // Phase 1 (serial): prune with stats, resolve cache hits, read raw
    // bytes for misses. Healthy chunks become pool jobs; degraded chunks
    // (split or with lost fragments) stay serial because their data-plane
    // reads rebuild from stripes through `&Store`.
    let mut leaf_acc: Vec<Vec<Option<Bitmap>>> = (0..num_rgs)
        .map(|_| (0..plan.filters.len()).map(|_| None).collect())
        .collect();
    let mut tasks: Vec<ScanTask> = Vec::new();
    // `rg` also indexes the footer metadata, not just `leaf_acc`.
    #[allow(clippy::needless_range_loop)]
    for rg in 0..num_rgs {
        let rows = fm.row_groups[rg].row_count as usize;
        let rg_alive = row_group_may_match(plan.tree.as_ref(), &plan.filters, &fm.row_groups[rg]);
        for (li, leaf) in plan.filters.iter().enumerate() {
            let cm = fm.chunk(rg, leaf.column)?;
            considered += 1;
            if !rg_alive || !stats_may_match(leaf, cm.min.as_ref(), cm.max.as_ref()) {
                pruned += 1;
                leaf_acc[rg][li] = Some(Bitmap::with_len(rows));
                continue;
            }
            if stats_all_match(leaf, cm.min.as_ref(), cm.max.as_ref()) {
                // Stats prove every row matches: no read, no scan, no
                // dispatch — the bitmap is known from the footer alone,
                // so this counts as a stats-pruned chunk (skipped), not
                // a cache access.
                pruned += 1;
                leaf_acc[rg][li] = Some(Bitmap::ones_with_len(rows));
                continue;
            }
            let ty = fm.schema.fields()[leaf.column].ty;
            let ordinal = meta
                .chunk_ordinal(rg, leaf.column)
                .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;
            let frags = meta.chunk_fragments(ordinal);
            let healthy =
                frags.len() == 1 && store.blocks().has_block(frags[0].node, frags[0].block);
            if healthy {
                let (cached, raw) = match store.chunk_cache().get(object, ordinal) {
                    Some(c) => {
                        cache_hits += 1;
                        (Some(c), Vec::new())
                    }
                    None => {
                        cache_misses += 1;
                        let raw = store.chunk_bytes(object, ordinal)?;
                        shard_read_bytes += raw.len() as u64;
                        (None, raw)
                    }
                };
                tasks.push(ScanTask {
                    rg,
                    leaf_idx: li,
                    ordinal,
                    node: frags[0].node,
                    ty,
                    cm_len: cm.len,
                    cm_plain: cm.plain_size,
                    cm_count: cm.value_count,
                    cached,
                    raw,
                    out: None,
                });
            } else {
                // Split chunk (FAC fell back to fixed blocks) or lost
                // fragments: reassemble at the coordinator — rebuilding
                // lost fragments from their stripes — evaluate there.
                // The coordinator runs the same scan kernels but its
                // one-off reassembled view never enters the node cache;
                // it still reads the data plane, so it counts as a miss
                // (keeping the hits + misses + pruned == considered
                // invariant in degraded mode).
                cache_misses += 1;
                let chunk_bytes = store.chunk_bytes(object, ordinal)?;
                shard_read_bytes += chunk_bytes.len() as u64;
                let view = read_encoded_chunk(&chunk_bytes, ty)?;
                let bm = if encoded {
                    eval_filter_encoded(leaf, &view)?
                } else {
                    eval_filter(leaf, &view.decode()?)?
                };
                let bm_raw = bm.to_bytes();
                let wire = fusion_snappy::compress(&bm_raw);
                bitmap_wire_total += wire.len() as u64;
                let mut arrived = Vec::new();
                for f in &frags {
                    if store.blocks().has_block(f.node, f.block) {
                        let req = ctx.rpc(Loc::Node(coord), Loc::Node(f.node), &[plan_step]);
                        let req = ctx.retry(store.retry_penalty(f.node), &req);
                        let read = ctx.disk(f.node, f.len, &req);
                        arrived.extend(ctx.transfer(
                            Loc::Node(f.node),
                            Loc::Node(coord),
                            f.len,
                            &[read],
                        ));
                    } else {
                        arrived.push(degraded_fragment_fetch(
                            store,
                            meta,
                            &mut ctx,
                            coord,
                            f,
                            &[plan_step],
                        )?);
                    }
                }
                let eval = ctx.cpu(
                    Loc::Node(coord),
                    cost.decode_at(cm.plain_size, speedup * csp)
                        + cost.eval_at(cm.value_count, speedup)
                        + cost.compress_at(bm_raw.len() as u64, csp),
                    CostClass::Processing,
                    &arrived,
                );
                filter_frontier.push(eval);
                leaf_acc[rg][li] = Some(bm);
            }
        }
    }

    // Phase 2 (parallel): parse + scan every healthy chunk across the
    // worker pool. Pure CPU over job-owned buffers (and shared read-only
    // cached views), same discipline as Put and scrub.
    {
        let filters = &plan.filters;
        store.pool().for_each_mut(&mut tasks, |_, t| {
            let r = scan_one(t, &filters[t.leaf_idx], encoded);
            t.out = Some(r);
        });
    }

    // Phase 3 (serial, original dispatch order): populate the cache,
    // model each in-situ scan on the virtual clock, assemble bitmaps.
    for t in tasks {
        let hit = t.cached.is_some();
        let (chunk, bm) = t.out.expect("scanned in phase 2")?;
        if !hit {
            store.chunk_cache().insert(object, t.ordinal, chunk);
        }
        let bm_raw = bm.to_bytes();
        let wire = fusion_snappy::compress(&bm_raw);
        bitmap_wire_total += wire.len() as u64;
        // The node compresses its result bitmap before shipping it back.
        let bm_compress = cost.compress_at(bm_raw.len() as u64, csp);

        // Time plane: dispatch the sub-query; a cache hit skips the disk
        // read and the parse and goes straight to the masked scan.
        let req = ctx.rpc(Loc::Node(coord), Loc::Node(t.node), &[plan_step]);
        let req = ctx.retry(store.retry_penalty(t.node), &req);
        let eval = if hit {
            ctx.cpu(
                Loc::Node(t.node),
                cost.eval_at(t.cm_count, speedup) + bm_compress,
                CostClass::Processing,
                &req,
            )
        } else {
            let read = ctx.disk(t.node, t.cm_len, &req);
            ctx.cpu(
                Loc::Node(t.node),
                cost.decode_at(t.cm_plain, speedup * csp)
                    + cost.eval_at(t.cm_count, speedup)
                    + bm_compress,
                CostClass::Processing,
                &[read],
            )
        };
        let back = ctx.transfer(
            Loc::Node(t.node),
            Loc::Node(coord),
            wire.len() as u64,
            &[eval],
        );
        filter_frontier.extend(back);
        decoded_on.insert(t.ordinal, (t.node, eval));
        leaf_acc[t.rg][t.leaf_idx] = Some(bm);
    }

    let mut rg_bitmaps: Vec<Bitmap> = Vec::with_capacity(num_rgs);
    for (rg, accs) in leaf_acc.into_iter().enumerate() {
        let rows = fm.row_groups[rg].row_count as usize;
        let leaf_bitmaps: Vec<Bitmap> = accs
            .into_iter()
            .map(|b| b.expect("every leaf pruned, proven, or scanned"))
            .collect();
        let rg_bitmap = match &plan.tree {
            Some(tree) => combine(tree, &leaf_bitmaps)?,
            None => Bitmap::ones_with_len(rows),
        };
        rg_bitmaps.push(rg_bitmap);
    }

    if ctx.trace.enabled() {
        ctx.trace.enter(Phase::StatsPrune, "stats_prune");
        ctx.trace.add_count(pruned as u64);
        ctx.trace.exit();
        ctx.trace.enter(Phase::CacheLookup, "cache_lookup");
        ctx.trace.add_count((cache_hits + cache_misses) as u64);
        ctx.trace.exit();
        ctx.trace.enter(Phase::ShardRead, "shard_read");
        ctx.trace.add_count(cache_misses as u64);
        ctx.trace.add_bytes(shard_read_bytes);
        ctx.trace.exit();
    }
    ctx.trace.exit(); // filter_stage

    // Coordinator consolidates all bitmaps (cheap CPU, but a real barrier).
    ctx.phase(Phase::Other);
    let combine_step = ctx.cpu(
        Loc::Node(coord),
        cost.project(bitmap_wire_total + 1024),
        CostClass::Other,
        &filter_frontier,
    );

    let total_rows: usize = fm.row_groups.iter().map(|g| g.row_count as usize).sum();
    // Selectivity is measured before any LIMIT: it is the filter-stage
    // statistic the Cost Equation reasons about.
    let measured_matches: usize = rg_bitmaps.iter().map(Bitmap::count_ones).sum();
    let selectivity = if total_rows == 0 {
        0.0
    } else {
        measured_matches as f64 / total_rows as f64
    };
    super::apply_limit(plan, &mut rg_bitmaps);
    let total_matches: usize = rg_bitmaps.iter().map(Bitmap::count_ones).sum();

    // ---- GROUP BY pushdown (encoded-domain partial aggregation) ----
    // Grouped queries never ship projected rows: each participating node
    // reduces its matched rows to keyed `(group_key, PartialAgg)` states
    // (dictionary codes index the accumulators, RLE runs accumulate whole
    // spans), and the coordinator merges per-node states in row-group
    // order so float accumulation stays deterministic. Multi-key grouping
    // and the pushdown-off ablation fall back to grouping decoded values
    // at the coordinator.
    if plan.grouped() {
        return grouped_aggregate_stage(
            store,
            object,
            plan,
            AggStageInputs {
                fm,
                meta,
                coord,
                ctx,
                combine_step,
                rg_bitmaps: &rg_bitmaps,
                decoded_on: &decoded_on,
                selectivity,
                total_matches,
                pruned,
                cache_hits,
                cache_misses,
                considered,
            },
        );
    }

    // ---- Aggregate pushdown (extension; paper future work) ----
    // For aggregate-only queries the nodes can compute partial aggregates
    // over their matched rows and ship back a handful of bytes instead of
    // the selected values.
    if store.config().aggregate_pushdown
        && plan.aggregate_only()
        && !plan.aggregates.is_empty()
        && total_matches > 0
    {
        return aggregate_pushdown_stage(
            store,
            object,
            plan,
            AggStageInputs {
                fm,
                meta,
                coord,
                ctx,
                combine_step,
                rg_bitmaps: &rg_bitmaps,
                decoded_on: &decoded_on,
                selectivity,
                total_matches,
                pruned,
                cache_hits,
                cache_misses,
                considered,
            },
        );
    }

    // ---- Projection stage ----
    let mut projected: Vec<ColumnData> = Vec::with_capacity(plan.projections.len());
    let mut decisions = Vec::new();
    let mut proj_frontier: Vec<StepId> = vec![combine_step];
    ctx.phase(Phase::Project);
    ctx.trace.enter(Phase::Project, "projection_stage");

    for (pos, &col_idx) in plan.projections.iter().enumerate() {
        let _ = pos;
        let ty = fm.schema.fields()[col_idx].ty;
        let mut parts: Vec<ColumnData> = Vec::with_capacity(num_rgs);
        // `rg` also indexes the footer metadata, not just the bitmaps.
        #[allow(clippy::needless_range_loop)]
        for rg in 0..num_rgs {
            let matches: Vec<usize> = rg_bitmaps[rg].ones().collect();
            if matches.is_empty() {
                continue;
            }
            let cm = fm.chunk(rg, col_idx)?;
            let ordinal = meta
                .chunk_ordinal(rg, col_idx)
                .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;
            let frags = meta.chunk_fragments(ordinal);
            considered += 1;
            // Pushdown needs the chunk whole and its hosting node up.
            let healthy =
                frags.len() == 1 && store.blocks().has_block(frags[0].node, frags[0].block);

            // Data plane: healthy chunks are served through the hosting
            // node's encoded-chunk cache; degraded chunks bypass it (the
            // coordinator's reassembled view is one-off) but still read
            // the data plane, so they count as misses.
            let (col, hit) = if healthy {
                let (chunk, hit) = store.encoded_chunk(object, ordinal, ty)?;
                if hit {
                    cache_hits += 1;
                } else {
                    cache_misses += 1;
                }
                (chunk.decode()?, hit)
            } else {
                cache_misses += 1;
                let chunk_bytes = store.chunk_bytes(object, ordinal)?;
                (decode_column_chunk(&chunk_bytes, ty)?, false)
            };
            let part = col.take(&matches);
            let out_bytes = part.plain_size() as u64;

            // Cost Equation (paper §4.3): push down only when the
            // uncompressed projection result is smaller than the encoded
            // chunk. The coordinator knows the exact per-chunk match
            // count from the bitmap, so the product is computed with the
            // chunk's own selectivity.
            let product = out_bytes as f64 / cm.len.max(1) as f64;
            let push = (!adaptive || product < 1.0) && healthy;
            decisions.push(ProjectionDecision {
                row_group: rg,
                column: col_idx,
                cost_product: product,
                pushed_down: push,
            });

            // Time plane.
            if push {
                let node = frags[0].node;
                let bm_raw = rg_bitmaps[rg].to_bytes();
                let bm_wire = fusion_snappy::compress(&bm_raw).len() as u64;
                let start = ctx.retry(store.retry_penalty(node), &[combine_step]);
                // The coordinator compresses the bitmap before shipping it
                // down to the chunk's node.
                let comp = ctx.cpu(
                    Loc::Node(coord),
                    cost.compress_at(bm_raw.len() as u64, csp),
                    CostClass::Other,
                    &start,
                );
                let mut deps = ctx.transfer(Loc::Node(coord), Loc::Node(node), bm_wire, &[comp]);
                let work = match decoded_on.get(&ordinal) {
                    // The filter stage already read and decoded this chunk
                    // on this node: only the selection remains (paper
                    // Fig. 13c shows both systems spending the same time on
                    // disk read and chunk processing).
                    Some(&(n, eval_step)) if n == node => {
                        deps.push(eval_step);
                        ctx.cpu(
                            Loc::Node(node),
                            cost.project(out_bytes),
                            CostClass::Processing,
                            &deps,
                        )
                    }
                    // The node's cache holds the parsed view: skip the
                    // disk read and full decode, gather straight from it.
                    _ if hit => ctx.cpu(
                        Loc::Node(node),
                        cost.project(out_bytes),
                        CostClass::Processing,
                        &deps,
                    ),
                    _ => {
                        let read = ctx.disk(node, cm.len, &deps);
                        ctx.cpu(
                            Loc::Node(node),
                            cost.decode_at(cm.plain_size, csp) + cost.project(out_bytes),
                            CostClass::Processing,
                            &[read],
                        )
                    }
                };
                let back = ctx.transfer(Loc::Node(node), Loc::Node(coord), out_bytes, &[work]);
                proj_frontier.extend(back);
            } else {
                // Fetch the chunk in compressed form (rebuilding lost
                // fragments from their stripes); project locally.
                let mut arrived = Vec::new();
                for f in &frags {
                    if store.blocks().has_block(f.node, f.block) {
                        let req = ctx.rpc(Loc::Node(coord), Loc::Node(f.node), &[combine_step]);
                        let req = ctx.retry(store.retry_penalty(f.node), &req);
                        let read = ctx.disk(f.node, f.len, &req);
                        arrived.extend(ctx.transfer(
                            Loc::Node(f.node),
                            Loc::Node(coord),
                            f.len,
                            &[read],
                        ));
                    } else {
                        arrived.push(degraded_fragment_fetch(
                            store,
                            meta,
                            &mut ctx,
                            coord,
                            f,
                            &[combine_step],
                        )?);
                    }
                }
                let work = ctx.cpu(
                    Loc::Node(coord),
                    cost.decode_at(cm.plain_size, csp) + cost.project(out_bytes),
                    CostClass::Processing,
                    &arrived,
                );
                proj_frontier.push(work);
            }
            parts.push(part);
        }
        projected.push(concat_parts(ty, parts));
    }
    if ctx.trace.enabled() {
        ctx.trace
            .add_count(decisions.iter().filter(|d| d.pushed_down).count() as u64);
    }
    ctx.trace.exit(); // projection_stage

    // ---- Assemble and reply ----
    let result = assemble_result(plan, &projected, total_matches)?;
    let reply_bytes = result_wire_bytes(&result);
    ctx.phase(Phase::Other);
    let assemble = ctx.cpu(
        Loc::Node(coord),
        cost.project(reply_bytes),
        CostClass::Other,
        &proj_frontier,
    );
    ctx.transfer(Loc::Node(coord), Loc::Client, reply_bytes, &[assemble]);

    debug_assert_eq!(
        pruned + cache_hits + cache_misses,
        considered,
        "chunk accounting must conserve"
    );
    Ok(QueryOutput {
        result,
        selectivity,
        workflow: ctx.wf,
        net_bytes: ctx.net_bytes,
        decisions,
        pruned_chunks: pruned,
        cache_hits,
        cache_misses,
        chunks_considered: considered,
        trace: ctx.trace,
    })
}

/// Bundled borrow context for [`aggregate_pushdown_stage`].
struct AggStageInputs<'a> {
    fm: &'a fusion_format::footer::FileMeta,
    meta: &'a crate::object::ObjectMeta,
    coord: usize,
    ctx: Ctx<'a>,
    combine_step: StepId,
    rg_bitmaps: &'a [Bitmap],
    decoded_on: &'a std::collections::HashMap<usize, (usize, StepId)>,
    selectivity: f64,
    total_matches: usize,
    pruned: usize,
    cache_hits: usize,
    cache_misses: usize,
    considered: usize,
}

/// Completes an aggregate-only query by pushing partial-aggregate
/// computation to the chunk-hosting nodes (extension: the paper's §5
/// future work). Each node visit serves every aggregate over that column;
/// only tagged scalars return.
fn aggregate_pushdown_stage(
    store: &Store,
    object: &str,
    plan: &QueryPlan,
    inputs: AggStageInputs<'_>,
) -> Result<QueryOutput> {
    use fusion_sql::partial::PartialAgg;
    let AggStageInputs {
        fm,
        meta,
        coord,
        mut ctx,
        combine_step,
        rg_bitmaps,
        decoded_on,
        selectivity,
        total_matches,
        pruned,
        mut cache_hits,
        mut cache_misses,
        mut considered,
    } = inputs;
    let cost = store.config().cluster.cost.clone();
    let csp = store.config().compression_speedup();
    let num_rgs = fm.row_groups.len();
    ctx.phase(Phase::Aggregate);
    ctx.trace.enter(Phase::Aggregate, "aggregate_stage");

    // Group aggregate specs by their argument column.
    let mut by_col: Vec<(usize, Vec<usize>)> = Vec::new();
    for (ai, spec) in plan.aggregates.iter().enumerate() {
        if let Some(col) = spec.column {
            match by_col.iter_mut().find(|(c, _)| *c == col) {
                Some((_, v)) => v.push(ai),
                None => by_col.push((col, vec![ai])),
            }
        }
    }

    let mut acc: Vec<Option<PartialAgg>> = vec![None; plan.aggregates.len()];
    let mut frontier: Vec<StepId> = vec![combine_step];
    let mut decisions = Vec::new();

    for (col_idx, agg_idxs) in &by_col {
        let ty = fm.schema.fields()[*col_idx].ty;
        // `rg` also indexes the footer metadata, not just the bitmaps.
        #[allow(clippy::needless_range_loop)]
        for rg in 0..num_rgs {
            let matches: Vec<usize> = rg_bitmaps[rg].ones().collect();
            if matches.is_empty() {
                continue;
            }
            let cm = fm.chunk(rg, *col_idx)?;
            let ordinal = meta
                .chunk_ordinal(rg, *col_idx)
                .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;
            let frags = meta.chunk_fragments(ordinal);
            considered += 1;
            let healthy =
                frags.len() == 1 && store.blocks().has_block(frags[0].node, frags[0].block);

            // Data plane: decode once (via the node cache when healthy),
            // compute every partial. Degraded chunks bypass the cache but
            // still read the data plane, so they count as misses.
            let (col, hit) = if healthy {
                let (chunk, hit) = store.encoded_chunk(object, ordinal, ty)?;
                if hit {
                    cache_hits += 1;
                } else {
                    cache_misses += 1;
                }
                (chunk.decode()?, hit)
            } else {
                cache_misses += 1;
                let chunk_bytes = store.chunk_bytes(object, ordinal)?;
                (decode_column_chunk(&chunk_bytes, ty)?, false)
            };
            let part = col.take(&matches);
            let mut wire = 0u64;
            for &ai in agg_idxs {
                let p = PartialAgg::compute(plan.aggregates[ai].func, &part)?;
                wire += p.wire_bytes();
                match &mut acc[ai] {
                    Some(a) => a.merge(&p)?,
                    slot => *slot = Some(p),
                }
            }
            decisions.push(ProjectionDecision {
                row_group: rg,
                column: *col_idx,
                cost_product: wire as f64 / cm.len.max(1) as f64,
                pushed_down: true,
            });

            // Time plane: bitmap down, partial scalars back. Pushdown
            // needs the chunk whole and its hosting node up.
            if healthy {
                let node = frags[0].node;
                let bm_raw = rg_bitmaps[rg].to_bytes();
                let bm_wire = fusion_snappy::compress(&bm_raw).len() as u64;
                let start = ctx.retry(store.retry_penalty(node), &[combine_step]);
                // The coordinator compresses the bitmap before shipping it
                // down to the chunk's node.
                let comp = ctx.cpu(
                    Loc::Node(coord),
                    cost.compress_at(bm_raw.len() as u64, csp),
                    CostClass::Other,
                    &start,
                );
                let mut deps = ctx.transfer(Loc::Node(coord), Loc::Node(node), bm_wire, &[comp]);
                let work = match decoded_on.get(&ordinal) {
                    Some(&(n, eval_step)) if n == node => {
                        deps.push(eval_step);
                        ctx.cpu(
                            Loc::Node(node),
                            cost.eval(matches.len() as u64 * agg_idxs.len() as u64),
                            CostClass::Processing,
                            &deps,
                        )
                    }
                    // Parsed view resident in the node cache: aggregate
                    // straight from it, no disk read or full decode.
                    _ if hit => ctx.cpu(
                        Loc::Node(node),
                        cost.eval(matches.len() as u64 * agg_idxs.len() as u64),
                        CostClass::Processing,
                        &deps,
                    ),
                    _ => {
                        let read = ctx.disk(node, cm.len, &deps);
                        ctx.cpu(
                            Loc::Node(node),
                            cost.decode_at(cm.plain_size, csp)
                                + cost.eval(matches.len() as u64 * agg_idxs.len() as u64),
                            CostClass::Processing,
                            &[read],
                        )
                    }
                };
                frontier.extend(ctx.transfer(Loc::Node(node), Loc::Node(coord), wire, &[work]));
            } else {
                // Split chunk or lost fragments: fetch (or rebuild)
                // fragments and aggregate locally.
                let mut arrived = Vec::new();
                for f in &frags {
                    if store.blocks().has_block(f.node, f.block) {
                        let req = ctx.rpc(Loc::Node(coord), Loc::Node(f.node), &[combine_step]);
                        let req = ctx.retry(store.retry_penalty(f.node), &req);
                        let read = ctx.disk(f.node, f.len, &req);
                        arrived.extend(ctx.transfer(
                            Loc::Node(f.node),
                            Loc::Node(coord),
                            f.len,
                            &[read],
                        ));
                    } else {
                        arrived.push(degraded_fragment_fetch(
                            store,
                            meta,
                            &mut ctx,
                            coord,
                            f,
                            &[combine_step],
                        )?);
                    }
                }
                frontier.push(ctx.cpu(
                    Loc::Node(coord),
                    cost.decode_at(cm.plain_size, csp) + cost.eval(matches.len() as u64),
                    CostClass::Processing,
                    &arrived,
                ));
            }
        }
    }

    // Finalize in output order.
    let mut aggregates = Vec::with_capacity(plan.aggregates.len());
    for (ai, spec) in plan.aggregates.iter().enumerate() {
        let value = match (&acc[ai], spec.column) {
            (_, None) => fusion_format::value::Value::Int(total_matches as i64),
            (Some(p), _) => p.finalize(),
            (None, Some(_)) => PartialAgg::identity(spec.func, None).finalize(),
        };
        let label = match &spec.column_name {
            Some(c) => format!("{}({})", spec.func, c),
            None => format!("{}(*)", spec.func),
        };
        aggregates.push((label, value));
    }
    let result = QueryResult {
        row_count: total_matches,
        columns: Vec::new(),
        aggregates,
    };

    if ctx.trace.enabled() {
        ctx.trace.add_count(decisions.len() as u64);
    }
    ctx.trace.exit(); // aggregate_stage

    let reply_bytes = result_wire_bytes(&result);
    ctx.phase(Phase::Other);
    let assemble = ctx.cpu(
        Loc::Node(coord),
        cost.project(reply_bytes),
        CostClass::Other,
        &frontier,
    );
    ctx.transfer(Loc::Node(coord), Loc::Client, reply_bytes, &[assemble]);

    debug_assert_eq!(
        pruned + cache_hits + cache_misses,
        considered,
        "chunk accounting must conserve"
    );
    Ok(QueryOutput {
        result,
        selectivity,
        workflow: ctx.wf,
        net_bytes: ctx.net_bytes,
        decisions,
        pruned_chunks: pruned,
        cache_hits,
        cache_misses,
        chunks_considered: considered,
        trace: ctx.trace,
    })
}

/// Completes a GROUP BY query by pushing keyed partial aggregation to
/// the chunk-hosting nodes (the tentpole extension over scalar aggregate
/// pushdown). With a single dictionary/RLE group key the nodes accumulate
/// one slot vector per dictionary code — no per-row hashing — and RLE
/// runs fold whole spans at a time. The wire carries per-node
/// `(group_key, PartialAgg)` states instead of projected rows.
///
/// Per row group, the key chunk's node evaluates the aggregates whose
/// argument is the key (or `COUNT(*)`); every other argument column's
/// node receives the tiny encoded key descriptor plus the filter bitmap
/// and reduces its own column. Degraded row groups — and multi-key or
/// pushdown-off queries — fall back to fetching the touched chunks and
/// running the decoded oracle kernel at the coordinator, so results are
/// identical either way.
fn grouped_aggregate_stage(
    store: &Store,
    object: &str,
    plan: &QueryPlan,
    inputs: AggStageInputs<'_>,
) -> Result<QueryOutput> {
    use fusion_sql::eval::{group_aggregate_decoded, group_aggregate_encoded, AggInput};
    use fusion_sql::partial::{GroupKey, GroupedAggs};
    let AggStageInputs {
        fm,
        meta,
        coord,
        mut ctx,
        combine_step,
        rg_bitmaps,
        decoded_on,
        selectivity,
        total_matches,
        pruned,
        mut cache_hits,
        mut cache_misses,
        mut considered,
    } = inputs;
    let cost = store.config().cluster.cost.clone();
    let csp = store.config().compression_speedup();
    let speedup = store.config().scan_speedup();
    let num_rgs = fm.row_groups.len();
    ctx.phase(Phase::GroupedAggregate);
    ctx.trace
        .enter(Phase::GroupedAggregate, "grouped_aggregate_stage");

    // The encoded fast path handles exactly one group key; multi-key
    // grouping (and the pushdown-off ablation) groups decoded values at
    // the coordinator instead.
    let encoded_path = store.config().aggregate_pushdown && plan.group_by.len() == 1;

    // Distinct aggregate-argument columns that are not the group key, in
    // first-appearance order: each is reduced on its own hosting node.
    let mut arg_cols: Vec<usize> = Vec::new();
    for spec in &plan.aggregates {
        if let Some(c) = spec.column {
            if !plan.group_by.contains(&c) && !arg_cols.contains(&c) {
                arg_cols.push(c);
            }
        }
    }
    // Aggregate indices the key node itself serves: `COUNT(*)` and any
    // aggregate whose argument is a group-key column.
    let key_aggs: Vec<usize> = plan
        .aggregates
        .iter()
        .enumerate()
        .filter(|(_, s)| s.column.is_none() || s.column.is_some_and(|c| plan.group_by.contains(&c)))
        .map(|(ai, _)| ai)
        .collect();

    let mut merged: Option<GroupedAggs> = None;
    let mut frontier: Vec<StepId> = vec![combine_step];
    let mut decisions = Vec::new();
    let mut groups_emitted = 0u64;
    let mut state_wire_total = 0u64;
    // Counterfactual: what projecting the matched rows of every touched
    // column would have shipped (average encoded-row width × matches).
    let mut row_ship_bytes = 0u64;

    // `rg` also indexes the footer metadata, not just the bitmaps.
    #[allow(clippy::needless_range_loop)]
    for rg in 0..num_rgs {
        let filter = &rg_bitmaps[rg];
        let matches = filter.count_ones();
        if matches == 0 {
            continue;
        }
        for &col_idx in plan.group_by.iter().chain(&arg_cols) {
            let cm = fm.chunk(rg, col_idx)?;
            row_ship_bytes += cm.plain_size * matches as u64 / cm.value_count.max(1);
        }

        // Pushdown needs every touched chunk whole and its node up.
        let mut healthy = encoded_path;
        if healthy {
            for &col_idx in plan.group_by.iter().chain(&arg_cols) {
                let ordinal = meta
                    .chunk_ordinal(rg, col_idx)
                    .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;
                let frags = meta.chunk_fragments(ordinal);
                healthy &=
                    frags.len() == 1 && store.blocks().has_block(frags[0].node, frags[0].block);
            }
        }

        let rg_grouped = if healthy {
            // ---- Encoded-domain pushdown for this row group ----
            let key_col = plan.group_by[0];
            let key_ty = fm.schema.fields()[key_col].ty;
            let key_cm = fm.chunk(rg, key_col)?;
            let key_ordinal = meta
                .chunk_ordinal(rg, key_col)
                .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;
            let key_node = meta.chunk_fragments(key_ordinal)[0].node;

            // Data plane: the key chunk stays encoded (codes index the
            // accumulators); argument columns decode on their own nodes.
            considered += 1;
            let (key_chunk, key_hit) = store.encoded_chunk(object, key_ordinal, key_ty)?;
            if key_hit {
                cache_hits += 1;
            } else {
                cache_misses += 1;
            }
            struct ArgFetch {
                col: usize,
                data: ColumnData,
                hit: bool,
                node: usize,
                ordinal: usize,
                cm_len: u64,
                cm_plain: u64,
                aggs: Vec<usize>,
            }
            let mut args: Vec<ArgFetch> = Vec::with_capacity(arg_cols.len());
            for &col_idx in &arg_cols {
                let ty = fm.schema.fields()[col_idx].ty;
                let ordinal = meta
                    .chunk_ordinal(rg, col_idx)
                    .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;
                considered += 1;
                let (chunk, hit) = store.encoded_chunk(object, ordinal, ty)?;
                if hit {
                    cache_hits += 1;
                } else {
                    cache_misses += 1;
                }
                let cm = fm.chunk(rg, col_idx)?;
                args.push(ArgFetch {
                    col: col_idx,
                    data: chunk.decode()?,
                    hit,
                    node: meta.chunk_fragments(ordinal)[0].node,
                    ordinal,
                    cm_len: cm.len,
                    cm_plain: cm.plain_size,
                    aggs: plan
                        .aggregates
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.column == Some(col_idx))
                        .map(|(ai, _)| ai)
                        .collect(),
                });
            }
            let agg_inputs: Vec<(fusion_sql::ast::AggFunc, AggInput<'_>)> = plan
                .aggregates
                .iter()
                .map(|s| {
                    let input = match s.column {
                        None => AggInput::Star,
                        Some(c) if c == key_col => AggInput::Key,
                        Some(c) => AggInput::Col(
                            &args.iter().find(|a| a.col == c).expect("arg fetched").data,
                        ),
                    };
                    (s.func, input)
                })
                .collect();
            let rg_grouped = group_aggregate_encoded(&key_chunk, &agg_inputs, filter)
                .map_err(StoreError::from)?;

            // Per-node wire: every participating node returns the keys
            // plus the states of the aggregates it owns.
            let key_bytes: u64 = rg_grouped.groups.keys().map(GroupKey::wire_bytes).sum();
            let state_bytes_for = |agg_idxs: &[usize]| -> u64 {
                key_bytes
                    + rg_grouped
                        .groups
                        .values()
                        .map(|parts| {
                            agg_idxs
                                .iter()
                                .map(|&ai| parts[ai].wire_bytes())
                                .sum::<u64>()
                        })
                        .sum::<u64>()
            };

            // Time plane: bitmap down to the key node; descriptor + bitmap
            // to each argument node; only keyed states come back.
            let bm_raw = filter.to_bytes();
            let bm_wire = fusion_snappy::compress(&bm_raw).len() as u64;
            let start = ctx.retry(store.retry_penalty(key_node), &[combine_step]);
            let comp = ctx.cpu(
                Loc::Node(coord),
                cost.compress_at(bm_raw.len() as u64, csp),
                CostClass::Other,
                &start,
            );
            let key_wire = state_bytes_for(&key_aggs);
            let key_cpu = cost.eval_at(matches as u64 * key_aggs.len().max(1) as u64, speedup)
                + cost.agg_state(key_wire);
            let mut key_deps =
                ctx.transfer(Loc::Node(coord), Loc::Node(key_node), bm_wire, &[comp]);
            let key_work = match decoded_on.get(&key_ordinal) {
                Some(&(n, eval_step)) if n == key_node => {
                    key_deps.push(eval_step);
                    ctx.cpu(
                        Loc::Node(key_node),
                        key_cpu,
                        CostClass::Processing,
                        &key_deps,
                    )
                }
                _ if key_hit => ctx.cpu(
                    Loc::Node(key_node),
                    key_cpu,
                    CostClass::Processing,
                    &key_deps,
                ),
                _ => {
                    let read = ctx.disk(key_node, key_cm.len, &key_deps);
                    ctx.cpu(
                        Loc::Node(key_node),
                        cost.decode_at(key_cm.plain_size, speedup * csp) + key_cpu,
                        CostClass::Processing,
                        &[read],
                    )
                }
            };
            frontier.extend(ctx.transfer(
                Loc::Node(key_node),
                Loc::Node(coord),
                key_wire,
                &[key_work],
            ));
            state_wire_total += key_wire;
            decisions.push(ProjectionDecision {
                row_group: rg,
                column: key_col,
                cost_product: key_wire as f64 / key_cm.len.max(1) as f64,
                pushed_down: true,
            });

            for arg in &args {
                let wire = state_bytes_for(&arg.aggs);
                let mut deps: Vec<StepId> = Vec::new();
                if arg.node == key_node {
                    // Same node already holds the parsed key chunk.
                    deps.push(key_work);
                } else {
                    // Bitmap from the coordinator, encoded key descriptor
                    // from the key node (tiny: the dictionary + runs).
                    deps.extend(ctx.transfer(
                        Loc::Node(coord),
                        Loc::Node(arg.node),
                        bm_wire,
                        &[comp],
                    ));
                    deps.extend(ctx.transfer(
                        Loc::Node(key_node),
                        Loc::Node(arg.node),
                        key_cm.len,
                        &[key_work],
                    ));
                }
                let deps = ctx.retry(store.retry_penalty(arg.node), &deps);
                let arg_cpu = cost.eval_at(matches as u64 * arg.aggs.len() as u64, speedup)
                    + cost.agg_state(wire);
                let work = match decoded_on.get(&arg.ordinal) {
                    Some(&(n, eval_step)) if n == arg.node => {
                        let mut deps = deps.clone();
                        deps.push(eval_step);
                        ctx.cpu(Loc::Node(arg.node), arg_cpu, CostClass::Processing, &deps)
                    }
                    _ if arg.hit => {
                        ctx.cpu(Loc::Node(arg.node), arg_cpu, CostClass::Processing, &deps)
                    }
                    _ => {
                        let read = ctx.disk(arg.node, arg.cm_len, &deps);
                        ctx.cpu(
                            Loc::Node(arg.node),
                            cost.decode_at(arg.cm_plain, csp) + arg_cpu,
                            CostClass::Processing,
                            &[read],
                        )
                    }
                };
                frontier.extend(ctx.transfer(Loc::Node(arg.node), Loc::Node(coord), wire, &[work]));
                state_wire_total += wire;
                decisions.push(ProjectionDecision {
                    row_group: rg,
                    column: arg.col,
                    cost_product: wire as f64 / arg.cm_len.max(1) as f64,
                    pushed_down: true,
                });
            }
            rg_grouped
        } else {
            // ---- Coordinator fallback for this row group ----
            // Fetch every touched chunk (rebuilding lost fragments from
            // their stripes), decode, and run the decoded oracle kernel.
            let mut arrived: Vec<StepId> = Vec::new();
            let mut decode_cost = fusion_cluster::time::Nanos::ZERO;
            let mut fetched: std::collections::HashMap<usize, ColumnData> =
                std::collections::HashMap::new();
            for &col_idx in plan.group_by.iter().chain(&arg_cols) {
                let cm = fm.chunk(rg, col_idx)?;
                let ty = fm.schema.fields()[col_idx].ty;
                let ordinal = meta
                    .chunk_ordinal(rg, col_idx)
                    .ok_or_else(|| StoreError::Internal("chunk ordinal out of range".into()))?;
                let frags = meta.chunk_fragments(ordinal);
                considered += 1;
                let chunk_healthy =
                    frags.len() == 1 && store.blocks().has_block(frags[0].node, frags[0].block);
                let col = if chunk_healthy {
                    let (chunk, hit) = store.encoded_chunk(object, ordinal, ty)?;
                    if hit {
                        cache_hits += 1;
                    } else {
                        cache_misses += 1;
                    }
                    chunk.decode()?
                } else {
                    cache_misses += 1;
                    let chunk_bytes = store.chunk_bytes(object, ordinal)?;
                    decode_column_chunk(&chunk_bytes, ty)?
                };
                fetched.insert(col_idx, col);
                for f in &frags {
                    if store.blocks().has_block(f.node, f.block) {
                        let req = ctx.rpc(Loc::Node(coord), Loc::Node(f.node), &[combine_step]);
                        let req = ctx.retry(store.retry_penalty(f.node), &req);
                        let read = ctx.disk(f.node, f.len, &req);
                        arrived.extend(ctx.transfer(
                            Loc::Node(f.node),
                            Loc::Node(coord),
                            f.len,
                            &[read],
                        ));
                    } else {
                        arrived.push(degraded_fragment_fetch(
                            store,
                            meta,
                            &mut ctx,
                            coord,
                            f,
                            &[combine_step],
                        )?);
                    }
                }
                decode_cost += cost.decode_at(cm.plain_size, csp) + cost.eval(cm.value_count);
            }
            let keys: Vec<&ColumnData> = plan
                .group_by
                .iter()
                .map(|c| fetched.get(c).expect("key column fetched above"))
                .collect();
            let aggs: Vec<(fusion_sql::ast::AggFunc, Option<&ColumnData>)> = plan
                .aggregates
                .iter()
                .map(|s| {
                    (
                        s.func,
                        s.column
                            .map(|c| fetched.get(&c).expect("aggregate column fetched above")),
                    )
                })
                .collect();
            let rg_grouped =
                group_aggregate_decoded(&keys, &aggs, filter).map_err(StoreError::from)?;
            frontier.push(ctx.cpu(
                Loc::Node(coord),
                decode_cost + cost.agg_state(rg_grouped.wire_bytes()),
                CostClass::Processing,
                &arrived,
            ));
            rg_grouped
        };

        groups_emitted += rg_grouped.len() as u64;
        // Merge in row-group order: keyed float states accumulate in a
        // fixed association order, so re-running the query is bit-stable.
        match &mut merged {
            Some(m) => m.merge(&rg_grouped).map_err(StoreError::from)?,
            slot => *slot = Some(rg_grouped),
        }
    }

    let grouped = merged.unwrap_or_else(|| GroupedAggs::new(Vec::new()));
    store
        .metrics()
        .counter("agg_groups_emitted")
        .add(groups_emitted);
    store
        .metrics()
        .counter("agg_wire_bytes_saved")
        .add(row_ship_bytes.saturating_sub(state_wire_total));
    if ctx.trace.enabled() {
        ctx.trace.add_count(groups_emitted);
        ctx.trace.add_bytes(state_wire_total);
    }
    ctx.trace.exit(); // grouped_aggregate_stage

    let result = super::assemble_grouped_result(plan, &fm.schema, grouped, total_matches)?;
    let reply_bytes = result_wire_bytes(&result);
    ctx.phase(Phase::Other);
    // The coordinator merges per-node keyed states, then replies.
    let assemble = ctx.cpu(
        Loc::Node(coord),
        cost.agg_state(state_wire_total) + cost.project(reply_bytes),
        CostClass::Other,
        &frontier,
    );
    ctx.transfer(Loc::Node(coord), Loc::Client, reply_bytes, &[assemble]);

    debug_assert_eq!(
        pruned + cache_hits + cache_misses,
        considered,
        "chunk accounting must conserve"
    );
    Ok(QueryOutput {
        result,
        selectivity,
        workflow: ctx.wf,
        net_bytes: ctx.net_bytes,
        decisions,
        pruned_chunks: pruned,
        cache_hits,
        cache_misses,
        chunks_considered: considered,
        trace: ctx.trace,
    })
}

/// Concatenates per-row-group projection parts (possibly none).
pub(crate) fn concat_parts(
    ty: fusion_format::schema::LogicalType,
    parts: Vec<ColumnData>,
) -> ColumnData {
    use fusion_format::schema::LogicalType;
    let mut acc = match ty {
        LogicalType::Int64 | LogicalType::Date => ColumnData::Int64(Vec::new()),
        LogicalType::Float64 => ColumnData::Float64(Vec::new()),
        LogicalType::Utf8 => ColumnData::Utf8(Vec::new()),
    };
    for p in parts {
        match (&mut acc, p) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend(b),
            _ => unreachable!("parts decoded with a single logical type"),
        }
    }
    acc
}
