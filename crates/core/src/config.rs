//! Store configuration: erasure-code parameters, layout policy, pushdown
//! policy, and the simulated cluster spec.

use fusion_cluster::spec::ClusterSpec;
use fusion_cluster::time::Nanos;
use fusion_ec::codec::CodecKind;

/// Erasure-code parameters: `(n, k)` plus an optional local-group count
/// selecting a locally-repairable code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcConfig {
    /// Total blocks per stripe.
    pub n: usize,
    /// Data blocks per stripe.
    pub k: usize,
    /// Local parity groups. Zero selects plain Reed-Solomon; `l > 0`
    /// selects `LRC(n, k, l)` — `l` of the `n − k` parity blocks become
    /// per-group local parities (cheap single-shard repair), the rest
    /// stay global.
    pub local_groups: usize,
}

impl EcConfig {
    /// The paper's default: RS(9, 6).
    pub const RS_9_6: EcConfig = EcConfig::rs(9, 6);
    /// The other common production code: RS(14, 10).
    pub const RS_14_10: EcConfig = EcConfig::rs(14, 10);
    /// The repair-efficient code: LRC(10, 6, 2) — same guaranteed
    /// tolerance (3) as RS(9, 6), one extra parity block, and
    /// single-shard repair from 3 shards instead of 6.
    pub const LRC_10_6: EcConfig = EcConfig::lrc(10, 6, 2);

    /// Plain Reed-Solomon `(n, k)`.
    pub const fn rs(n: usize, k: usize) -> EcConfig {
        EcConfig {
            n,
            k,
            local_groups: 0,
        }
    }

    /// Locally-repairable `LRC(n, k, l)`.
    pub const fn lrc(n: usize, k: usize, local_groups: usize) -> EcConfig {
        EcConfig { n, k, local_groups }
    }

    /// Parity blocks per stripe.
    pub fn parity(&self) -> usize {
        self.n - self.k
    }

    /// Guaranteed simultaneous-loss tolerance: `n − k` for RS, `g + 1 =
    /// n − k − l + 1` for LRC (local parities trade tolerance for repair
    /// locality).
    pub fn tolerance(&self) -> usize {
        if self.local_groups == 0 {
            self.n - self.k
        } else {
            self.n - self.k - self.local_groups + 1
        }
    }

    /// Optimal storage overhead `(n − k) / k`.
    pub fn optimal_overhead(&self) -> f64 {
        (self.n - self.k) as f64 / self.k as f64
    }

    /// Instantiates the stripe codec this config describes.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from the codec constructors.
    pub fn build_codec(
        &self,
        kind: fusion_ec::codec::CodecKind,
    ) -> Result<std::sync::Arc<dyn fusion_ec::stripe::StripeCodec>, fusion_ec::rs::CodeParamsError>
    {
        if self.local_groups == 0 {
            Ok(std::sync::Arc::new(fusion_ec::rs::ReedSolomon::with_codec(
                self.n, self.k, kind,
            )?))
        } else {
            Ok(std::sync::Arc::new(fusion_ec::lrc::LrcCodec::with_codec(
                self.n,
                self.k,
                self.local_groups,
                kind,
            )?))
        }
    }
}

impl std::fmt::Display for EcConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.local_groups == 0 {
            write!(f, "RS({}, {})", self.n, self.k)
        } else {
            write!(f, "LRC({}, {}, {})", self.n, self.k, self.local_groups)
        }
    }
}

/// How stripe shards are mapped to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Spread shards across failure domains: no domain holds more than
    /// the code's tolerance in shards of one stripe, and no domain holds
    /// two shards of the same local group. A whole-domain outage then
    /// never loses data, and local repair stays available.
    #[default]
    DomainAware,
    /// Topology-oblivious random placement (distinct nodes only) — the
    /// pre-topology behavior, kept as the experimental control.
    Naive,
    /// Seeded rendezvous (highest-random-weight) hashing over
    /// `(seed, object, stripe, shard, node)` with the same
    /// failure-domain constraints as [`PlacementPolicy::DomainAware`].
    /// Placement becomes a pure function of the object key and cluster
    /// membership — the store keeps a compact
    /// [`crate::meta::LayoutRecord`] per object instead of a full
    /// per-chunk map, and membership changes move only ~1/n of chunks
    /// (DESIGN.md §16).
    Deterministic,
}

/// How objects are cut into erasure-code data blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayoutPolicy {
    /// Fixed-size blocks, format-oblivious — what MinIO/Ceph-class systems
    /// do. Column chunks may split across nodes.
    Fixed,
    /// The padding approach of Adams et al.: fixed-size blocks, chunks
    /// aligned to block boundaries by inserting physical padding.
    Padding,
    /// Fusion's file-format-aware coding: variable block sizes per stripe,
    /// chunks never split, bin-packed to minimize overhead (Algorithm 1).
    Fac,
    /// Exact branch-and-bound solution of the stripe-construction ILP,
    /// with a wall-clock deadline (stands in for the paper's Gurobi
    /// oracle).
    Oracle {
        /// Give up and return the best incumbent after this much real time.
        deadline: std::time::Duration,
    },
}

impl LayoutPolicy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LayoutPolicy::Fixed => "fixed",
            LayoutPolicy::Padding => "padding",
            LayoutPolicy::Fac => "fac",
            LayoutPolicy::Oracle { .. } => "oracle",
        }
    }
}

/// How queries execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Reassemble needed chunks at the coordinator, then evaluate locally
    /// (the baseline, with footer-based chunk pruning).
    Reassemble,
    /// Push filters down always; push projections down only when the Cost
    /// Equation `selectivity × compressibility < 1` holds (Fusion).
    AdaptivePushdown,
    /// Push everything down unconditionally (the ablation of §4.3).
    AlwaysPushdown,
}

/// Complete store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Erasure code.
    pub ec: EcConfig,
    /// Block size for [`LayoutPolicy::Fixed`] / [`LayoutPolicy::Padding`]
    /// (paper default: 100 MB).
    pub block_size: u64,
    /// Layout policy.
    pub layout: LayoutPolicy,
    /// Maximum additional storage overhead w.r.t. optimal that FAC may
    /// incur before falling back to fixed blocks (paper default: 2%).
    pub overhead_threshold: f64,
    /// Query execution mode.
    pub query_mode: QueryMode,
    /// Simulated cluster.
    pub cluster: ClusterSpec,
    /// Seed for placement randomness.
    pub seed: u64,
    /// Extension (the paper's stated future work): push aggregates
    /// (COUNT/SUM/AVG/MIN/MAX) down to storage nodes for aggregate-only
    /// queries, so only tiny partial results cross the network.
    pub aggregate_pushdown: bool,
    /// Which GF(2^8) kernel the stripe codec multiplies with. The default
    /// [`CodecKind::Fast`] uses the split-nibble SIMD kernels;
    /// [`CodecKind::Scalar`] selects the log/exp reference path.
    pub codec: CodecKind,
    /// Worker threads for stripe-level encode/scrub/reconstruct
    /// parallelism. Zero is clamped to one; the default is the machine's
    /// available parallelism capped at eight (see DESIGN.md §9).
    pub ec_threads: usize,
    /// Capacity of the per-node encoded-chunk cache in bytes (decoded
    /// dictionary + run structure, weighed by [`fusion_format::chunk::EncodedChunk::weight_bytes`]).
    /// Repeated queries over the same chunks then skip the read + parse
    /// entirely. Zero disables caching.
    pub chunk_cache_bytes: u64,
    /// Evaluate filters with the encoded-domain scan kernels
    /// (dictionary-mask + RLE-span + word-batched plain loops) instead of
    /// decode-then-filter. `false` selects the scalar ablation path; the
    /// result is bit-identical either way.
    pub encoded_scan: bool,
    /// Charge compression/decompression CPU at the fast Snappy kernels'
    /// calibrated rate ([`FAST_SNAPPY_SPEEDUP`]) instead of the scalar
    /// reference rate. This is a **time-plane** knob only: the data path
    /// always runs the fast kernels (the differential suite proves them
    /// byte-compatible with the reference codec), so toggling this changes
    /// simulated latencies, never bytes.
    pub fast_snappy: bool,
    /// Record per-query structured trace spans ([`fusion_obs::trace::Trace`])
    /// while executing. Off by default: the hot path then uses the no-op
    /// recorder, which allocates nothing and records nothing, so benches
    /// measure the same code they always did. Metrics counters (cheap
    /// relaxed atomics) are always on regardless of this flag.
    pub observability: bool,
    /// How stripe shards map onto the cluster's failure domains.
    pub placement: PlacementPolicy,
}

/// Calibrated throughput ratio of [`CodecKind::Fast`] over
/// [`CodecKind::Scalar`] at RS(9, 6) with 1 MiB shards — measured by the
/// `ec_throughput` experiment (see `results/ec_throughput.json`; ~6.5x
/// encode, ~2.5x worst-case reconstruct, blended to 4.0 since the time
/// plane charges one rate for both). Used by the simulated time plane to
/// scale EC CPU cost per configured codec.
pub const FAST_CODEC_SPEEDUP: f64 = 4.0;

/// Calibrated throughput ratio of the encoded-domain scan kernels over the
/// decode-then-filter path — measured by the `scan_throughput` experiment
/// (geomean over a 0.001–1.0 selectivity sweep, 256Ki-row Int64 chunks;
/// see `results/scan_throughput.json`). Cache-hot scans measure ~5.3x on
/// dictionary columns, ~121x on RLE-run columns, and ~27x on plain
/// columns (the hot view also skips the Snappy decompress); cache-cold
/// scans measure ~1.4x / ~14.3x / ~1.0x (ratios over a decode path that
/// itself now runs the fast Snappy kernels). Blended conservatively to 6.0
/// since the time plane charges one rate for both the parse and the
/// predicate across all shapes. Used by the simulated time plane to scale
/// filter-stage CPU cost when [`StoreConfig::encoded_scan`] is on.
pub const ENCODED_SCAN_SPEEDUP: f64 = 6.0;

/// Calibrated throughput ratio of the fast Snappy kernels over the scalar
/// reference codec — measured by the `snappy_throughput` experiment (see
/// `results/snappy_throughput.json`). Decompress measures a ~11.2x
/// geomean over the compressible page mixes (run-heavy + text, ~1.0x at
/// the memcpy wall on incompressible pages, ~5.0x across all three);
/// compress measures ~10.1x across all mixes. Blended conservatively to
/// 6.0 since the time plane charges one rate for both directions across
/// all page shapes. Used by the simulated time plane to scale
/// page-decompression and bitmap-compression CPU cost when
/// [`StoreConfig::fast_snappy`] is on.
pub const FAST_SNAPPY_SPEEDUP: f64 = 6.0;

/// Default per-node chunk-cache capacity: 64 MiB.
pub const DEFAULT_CHUNK_CACHE_BYTES: u64 = 64 << 20;

/// Default EC worker-thread count: available parallelism, capped at eight.
fn default_ec_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8)
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            ec: EcConfig::RS_9_6,
            block_size: 100 << 20,
            layout: LayoutPolicy::Fac,
            overhead_threshold: 0.02,
            query_mode: QueryMode::AdaptivePushdown,
            cluster: ClusterSpec::default(),
            seed: 0xF051_0A11,
            aggregate_pushdown: false,
            codec: CodecKind::default(),
            ec_threads: default_ec_threads(),
            chunk_cache_bytes: DEFAULT_CHUNK_CACHE_BYTES,
            encoded_scan: true,
            fast_snappy: true,
            observability: false,
            placement: PlacementPolicy::default(),
        }
    }
}

impl StoreConfig {
    /// The Fusion configuration used throughout the paper's evaluation.
    pub fn fusion() -> StoreConfig {
        StoreConfig::default()
    }

    /// The baseline configuration: fixed blocks + coordinator reassembly
    /// (representative of MinIO / Ceph).
    pub fn baseline() -> StoreConfig {
        StoreConfig {
            layout: LayoutPolicy::Fixed,
            query_mode: QueryMode::Reassemble,
            ..StoreConfig::default()
        }
    }

    /// Overrides the placement seed (placement randomness is the only
    /// nondeterminism in the store).
    pub fn with_seed(mut self, seed: u64) -> StoreConfig {
        self.seed = seed;
        self
    }

    /// Overrides the erasure code.
    pub fn with_ec(mut self, ec: EcConfig) -> StoreConfig {
        self.ec = ec;
        self
    }

    /// Overrides the fixed/padding block size.
    pub fn with_block_size(mut self, bytes: u64) -> StoreConfig {
        self.block_size = bytes;
        self
    }

    /// Enables aggregate pushdown (the paper's future-work extension).
    pub fn with_aggregate_pushdown(mut self, on: bool) -> StoreConfig {
        self.aggregate_pushdown = on;
        self
    }

    /// Overrides the GF(2^8) stripe codec kernel.
    pub fn with_codec(mut self, codec: CodecKind) -> StoreConfig {
        self.codec = codec;
        self
    }

    /// Overrides the shard-placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> StoreConfig {
        self.placement = placement;
        self
    }

    /// Overrides the simulated cluster spec (node count, topology, cost
    /// model).
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> StoreConfig {
        self.cluster = cluster;
        self
    }

    /// Overrides the EC worker-thread count (zero is clamped to one).
    pub fn with_ec_threads(mut self, threads: usize) -> StoreConfig {
        self.ec_threads = threads.max(1);
        self
    }

    /// Overrides the per-node chunk-cache capacity (zero disables).
    pub fn with_chunk_cache_bytes(mut self, bytes: u64) -> StoreConfig {
        self.chunk_cache_bytes = bytes;
        self
    }

    /// Enables or disables the encoded-domain scan kernels.
    pub fn with_encoded_scan(mut self, on: bool) -> StoreConfig {
        self.encoded_scan = on;
        self
    }

    /// Selects whether the time plane charges (de)compression at the fast
    /// Snappy kernels' calibrated rate or the scalar reference rate.
    pub fn with_fast_snappy(mut self, on: bool) -> StoreConfig {
        self.fast_snappy = on;
        self
    }

    /// Enables or disables per-query trace-span recording.
    pub fn with_observability(mut self, on: bool) -> StoreConfig {
        self.observability = on;
        self
    }

    /// Throughput multiplier of the configured codec relative to the
    /// calibrated scalar EC rate (`CostModel::cpu_ec_bps`), used when the
    /// time plane charges erasure-coding CPU.
    pub fn codec_speedup(&self) -> f64 {
        match self.codec {
            CodecKind::Scalar => 1.0,
            CodecKind::Fast => FAST_CODEC_SPEEDUP,
        }
    }

    /// Throughput multiplier of the configured filter-scan path relative
    /// to the calibrated decode + per-row eval rates, used when the time
    /// plane charges in-situ filter-stage CPU.
    pub fn scan_speedup(&self) -> f64 {
        if self.encoded_scan {
            ENCODED_SCAN_SPEEDUP
        } else {
            1.0
        }
    }

    /// Throughput multiplier of the configured Snappy codec relative to
    /// the calibrated scalar compression/decompression rates
    /// (`CostModel::cpu_decode_bps`, `CostModel::cpu_compress_bps`), used
    /// when the time plane charges page-decompression or
    /// bitmap-compression CPU.
    pub fn compression_speedup(&self) -> f64 {
        if self.fast_snappy {
            FAST_SNAPPY_SPEEDUP
        } else {
            1.0
        }
    }

    /// Fixed per-query coordinator overhead from the cost model.
    pub fn query_overhead(&self) -> Nanos {
        self.cluster.cost.query_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec_math() {
        assert_eq!(EcConfig::RS_9_6.parity(), 3);
        assert_eq!(EcConfig::RS_9_6.optimal_overhead(), 0.5);
        assert_eq!(EcConfig::RS_14_10.optimal_overhead(), 0.4);
        assert_eq!(EcConfig::RS_9_6.to_string(), "RS(9, 6)");
    }

    #[test]
    fn ec_lrc_config() {
        let lrc = EcConfig::LRC_10_6;
        assert_eq!(lrc.parity(), 4);
        assert_eq!(lrc.tolerance(), 3);
        assert_eq!(EcConfig::RS_9_6.tolerance(), 3);
        assert_eq!(lrc.to_string(), "LRC(10, 6, 2)");
        let code = lrc.build_codec(CodecKind::Fast).unwrap();
        assert_eq!(code.total_blocks(), 10);
        assert_eq!(code.data_blocks(), 6);
        assert_eq!(code.tolerance(), 3);
        assert_eq!(code.placement_group(0), Some(0));
        assert_eq!(code.placement_group(9), None);
        let rs = EcConfig::RS_9_6.build_codec(CodecKind::Fast).unwrap();
        assert_eq!(rs.tolerance(), 3);
        assert_eq!(rs.placement_group(0), None);
        assert_eq!(rs.label(), "RS(9, 6)");
        // Bad LRC params surface as codec construction errors.
        assert!(EcConfig::lrc(10, 6, 4)
            .build_codec(CodecKind::Fast)
            .is_err());
    }

    #[test]
    fn presets() {
        let f = StoreConfig::fusion();
        assert_eq!(f.layout, LayoutPolicy::Fac);
        assert_eq!(f.query_mode, QueryMode::AdaptivePushdown);
        let b = StoreConfig::baseline();
        assert_eq!(b.layout, LayoutPolicy::Fixed);
        assert_eq!(b.query_mode, QueryMode::Reassemble);
        assert_eq!(b.block_size, 100 << 20);
        assert!((b.overhead_threshold - 0.02).abs() < 1e-12);
    }

    #[test]
    fn builders() {
        let c = StoreConfig::default()
            .with_seed(7)
            .with_ec(EcConfig::RS_14_10)
            .with_block_size(1 << 20)
            .with_codec(CodecKind::Scalar)
            .with_ec_threads(0);
        assert_eq!(c.seed, 7);
        assert_eq!(c.ec, EcConfig::RS_14_10);
        assert_eq!(c.block_size, 1 << 20);
        assert_eq!(c.codec, CodecKind::Scalar);
        assert_eq!(c.ec_threads, 1, "zero threads clamps to one");
    }

    #[test]
    fn codec_defaults_and_speedup() {
        let c = StoreConfig::default();
        assert_eq!(c.codec, CodecKind::Fast);
        assert!(c.ec_threads >= 1);
        assert_eq!(c.codec_speedup(), FAST_CODEC_SPEEDUP);
        assert_eq!(c.with_codec(CodecKind::Scalar).codec_speedup(), 1.0);
        // Acceptance floor for FastCodec, kept as a const block so the
        // build itself fails if the calibration ever drops below 3x.
        const { assert!(FAST_CODEC_SPEEDUP >= 3.0) };
    }

    #[test]
    fn scan_defaults_and_speedup() {
        let c = StoreConfig::default();
        assert!(c.encoded_scan);
        assert_eq!(c.chunk_cache_bytes, DEFAULT_CHUNK_CACHE_BYTES);
        assert_eq!(c.scan_speedup(), ENCODED_SCAN_SPEEDUP);
        let c = c.with_encoded_scan(false).with_chunk_cache_bytes(0);
        assert_eq!(c.scan_speedup(), 1.0);
        assert_eq!(c.chunk_cache_bytes, 0);
        // Acceptance floor for the encoded-domain kernels, kept as a
        // const block so the build fails if calibration drops below 3x.
        const { assert!(ENCODED_SCAN_SPEEDUP >= 3.0) };
    }

    #[test]
    fn snappy_defaults_and_speedup() {
        let c = StoreConfig::default();
        assert!(c.fast_snappy);
        assert_eq!(c.compression_speedup(), FAST_SNAPPY_SPEEDUP);
        assert_eq!(c.with_fast_snappy(false).compression_speedup(), 1.0);
        // Acceptance floor for the fast Snappy kernels, kept as a const
        // block so the build fails if calibration drops below 3x.
        const { assert!(FAST_SNAPPY_SPEEDUP >= 3.0) };
    }

    #[test]
    fn policy_names() {
        assert_eq!(LayoutPolicy::Fixed.name(), "fixed");
        assert_eq!(
            LayoutPolicy::Oracle {
                deadline: std::time::Duration::from_secs(1)
            }
            .name(),
            "oracle"
        );
    }
}
