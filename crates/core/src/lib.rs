#![warn(missing_docs)]

//! # fusion-core
//!
//! The Fusion analytics object store (ASPLOS '25): erasure coding
//! co-designed with the columnar file format so that **column chunks — the
//! smallest computable units — are never split across storage nodes**, plus
//! a fine-grained adaptive query-pushdown engine built on that guarantee.
//!
//! ## The two ideas
//!
//! 1. **File-format-aware coding (FAC)** — instead of cutting objects into
//!    fixed-size erasure-code blocks (which fragments chunks over many
//!    nodes), FAC reads chunk extents from the file footer and bin-packs
//!    whole chunks into *variable-size* data blocks, one stripe at a time
//!    ([`layout::fac`], Algorithm 1). Because a stripe's parity size equals
//!    its largest block, the packer minimizes the sum of per-stripe maxima;
//!    empirically it stays within ~1% of the optimal `(n−k)/k` overhead
//!    (vs up to >80% for the padding alternative, [`layout::padding`]).
//!    If the budget cannot be met the store falls back to fixed blocks.
//! 2. **Fine-grained adaptive pushdown** — filters always run in situ on
//!    the node hosting each chunk (they return tiny compressed bitmaps);
//!    projections are pushed down per chunk only when the Cost Equation
//!    `selectivity × compressibility < 1` predicts the uncompressed
//!    selected values are smaller than the compressed chunk
//!    ([`query::fusion`]).
//!
//! A MinIO/Ceph-class baseline (fixed blocks + coordinator reassembly,
//! [`query::baseline`]) is included for every experiment.
//!
//! ## Quickstart
//!
//! ```
//! use fusion_core::config::StoreConfig;
//! use fusion_core::store::Store;
//! use fusion_format::prelude::*;
//!
//! // Table 1 from the paper.
//! let schema = Schema::new(vec![
//!     Field::new("name", LogicalType::Utf8),
//!     Field::new("salary", LogicalType::Int64),
//! ]);
//! let table = Table::new(schema, vec![
//!     ColumnData::Utf8(vec!["Alice".into(), "Bob".into(), "Charlie".into(),
//!                           "David".into(), "Emily".into(), "Frank".into()]),
//!     ColumnData::Int64(vec![70_000, 80_000, 70_000, 60_000, 60_000, 70_000]),
//! ])?;
//! let bytes = write_table(&table, WriteOptions { rows_per_group: 3 })?;
//!
//! let mut cfg = StoreConfig::fusion();
//! cfg.overhead_threshold = 0.9; // tiny demo file; see DESIGN.md
//! let mut store = Store::new(cfg)?;
//! store.put("Employees", bytes)?;
//!
//! let out = store.query("SELECT salary FROM Employees WHERE name == 'Bob'")?;
//! assert_eq!(out.result.row_count, 1);
//! assert_eq!(out.result.columns[0].1, ColumnData::Int64(vec![80_000]));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod admin;
pub mod backend;
pub mod cache;
pub mod config;
pub mod error;
pub mod layout;
pub mod location_map;
pub mod meta;
pub mod object;
pub mod placement;
pub mod query;
pub mod store;

pub use admin::{ObjectInfo, ScrubReport};
pub use backend::{Backend, DesBackend, PutOutcome};
pub use cache::{CacheStats, ChunkCache};
pub use config::{EcConfig, LayoutPolicy, PlacementPolicy, QueryMode, StoreConfig};
pub use error::{Result, StoreError};
pub use location_map::{LocationMap, LocationMapError};
pub use meta::{LayoutRecord, Membership, Namespace, RebalanceReport};
pub use object::ObjectMeta;
pub use placement::{object_id, object_key, ObjectId, StripeShape};
pub use query::{QueryOutput, QueryResult};
pub use store::{ObjectMetaRecord, PutReport, RecoveryReport, Store};
