//! Unified error type for the Fusion store.

use crate::location_map::LocationMapError;
use fusion_cluster::store::ClusterError;
use fusion_ec::rs::{CodeParamsError, ReconstructError};
use fusion_format::error::FormatError;
use fusion_sql::error::SqlError;

/// Errors returned by [`crate::store::Store`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// No object with that name.
    ObjectNotFound(String),
    /// An object with that name already exists (updates are fresh inserts
    /// under a new name, per the paper).
    ObjectExists(String),
    /// The request addressed a non-analytics object with an analytics
    /// operation.
    NotAnalytics(String),
    /// Problems in the columnar file itself.
    Format(FormatError),
    /// SQL frontend failure.
    Sql(SqlError),
    /// Cluster-level failure (node down, block missing).
    Cluster(ClusterError),
    /// Erasure-code configuration problem.
    Code(CodeParamsError),
    /// Data is unrecoverable (more failures than parity).
    Unrecoverable(ReconstructError),
    /// Ranged read outside the object.
    OutOfRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual object size.
        size: u64,
    },
    /// Corrupt or out-of-range location metadata (bad wire payload,
    /// entry naming a node outside the cluster, offset overflow).
    Metadata(LocationMapError),
    /// A request argument is invalid before any data-plane work starts:
    /// an empty or oversized object key, an offset+length that overflows
    /// `u64`, or a node index outside the cluster. These come from the
    /// request boundary (untrusted wire input in service mode) and must
    /// stay typed — never a panic in a worker thread.
    InvalidRequest(String),
    /// The cluster cannot serve the request right now (e.g. no alive
    /// nodes to coordinate it). Retryable, unlike [`StoreError::Internal`].
    Unavailable(String),
    /// Anything else.
    Internal(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ObjectNotFound(n) => write!(f, "object not found: {n}"),
            StoreError::ObjectExists(n) => write!(f, "object already exists: {n}"),
            StoreError::NotAnalytics(n) => {
                write!(f, "object {n} is not an analytics file")
            }
            StoreError::Format(e) => write!(f, "format error: {e}"),
            StoreError::Sql(e) => write!(f, "sql error: {e}"),
            StoreError::Cluster(e) => write!(f, "cluster error: {e}"),
            StoreError::Code(e) => write!(f, "erasure code error: {e}"),
            StoreError::Unrecoverable(e) => write!(f, "unrecoverable data: {e}"),
            StoreError::OutOfRange { offset, len, size } => {
                write!(f, "range {offset}+{len} outside object of {size} bytes")
            }
            StoreError::Metadata(e) => write!(f, "metadata error: {e}"),
            StoreError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            StoreError::Unavailable(why) => write!(f, "unavailable: {why}"),
            StoreError::Internal(why) => write!(f, "internal error: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

impl From<SqlError> for StoreError {
    fn from(e: SqlError) -> Self {
        StoreError::Sql(e)
    }
}

impl From<ClusterError> for StoreError {
    fn from(e: ClusterError) -> Self {
        StoreError::Cluster(e)
    }
}

impl From<CodeParamsError> for StoreError {
    fn from(e: CodeParamsError) -> Self {
        StoreError::Code(e)
    }
}

impl From<ReconstructError> for StoreError {
    fn from(e: ReconstructError) -> Self {
        StoreError::Unrecoverable(e)
    }
}

impl From<LocationMapError> for StoreError {
    fn from(e: LocationMapError) -> Self {
        StoreError::Metadata(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: StoreError = FormatError::BadMagic.into();
        assert!(e.to_string().contains("format error"));
        let e: StoreError = SqlError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("sql error"));
        let e: StoreError = ClusterError::NodeDown(3).into();
        assert!(e.to_string().contains("node 3"));
        let e = StoreError::OutOfRange {
            offset: 10,
            len: 5,
            size: 12,
        };
        assert!(e.to_string().contains("10+5"));
        let e: StoreError = LocationMapError::BadLength(7).into();
        assert!(e.to_string().contains("metadata error"));
        let e = StoreError::InvalidRequest("empty key".into());
        assert!(e.to_string().contains("invalid request"));
        let e = StoreError::Unavailable("no alive nodes".into());
        assert!(e.to_string().contains("unavailable"));
    }
}
