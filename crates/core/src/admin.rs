//! Object-store management operations: listing, deletion, metadata heads,
//! and background scrubbing (parity verification) — the operational
//! surface a production deployment of Fusion would expose alongside
//! Put/Get/Query.

use crate::error::{Result, StoreError};
use crate::store::Store;
use bytes::Bytes;
use fusion_cluster::store::ClusterError;

/// Summary of one stored object (a `HEAD` response).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInfo {
    /// Object name.
    pub name: String,
    /// Logical size in bytes.
    pub size: u64,
    /// Whether the object parsed as an analytics file at Put time.
    pub analytics: bool,
    /// Column chunks (0 for blobs).
    pub chunks: usize,
    /// Stripes in the layout.
    pub stripes: usize,
    /// Layout policy that produced the stripes.
    pub layout: &'static str,
    /// Additional storage overhead vs optimal (fraction).
    pub overhead_vs_optimal: f64,
    /// Serialized location-metadata bytes across all replicas (the
    /// paper's 8-bytes-per-chunk map, or the compact layout record under
    /// deterministic placement).
    pub metadata_bytes: u64,
}

/// Result of a scrub pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripes whose parity checked out (including stripes healed in
    /// this pass from checksum-detected loss).
    pub stripes_ok: usize,
    /// Stripes with a block on a **down** node — not repairable until
    /// the node is replaced ([`Store::recover_node`]).
    pub stripes_degraded: usize,
    /// Stripes whose parity did **not** match their checksum-valid data
    /// (silent corruption that slipped past the CRC), or with too few
    /// readable shards to rebuild.
    pub stripes_corrupt: usize,
    /// Blocks rebuilt from parity and rewritten during this pass.
    pub blocks_repaired: usize,
    /// Stripes that had at least one block repaired.
    pub stripes_repaired: usize,
}

impl ScrubReport {
    /// True when no corruption was found (degraded stripes are not
    /// corruption — they are repairable by [`Store::recover_node`]).
    pub fn is_clean(&self) -> bool {
        self.stripes_corrupt == 0
    }
}

impl Store {
    /// Lists stored object names with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .object_names()
            .into_iter()
            .filter(|n| n.starts_with(prefix))
            .collect();
        names.sort();
        names
    }

    /// Returns summary metadata for an object.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`].
    pub fn head(&self, name: &str) -> Result<ObjectInfo> {
        let meta = self.object(name)?;
        Ok(ObjectInfo {
            name: meta.name.clone(),
            size: meta.size,
            analytics: meta.file_meta.is_some(),
            chunks: meta.num_chunks(),
            stripes: meta.layout.stripes.len(),
            layout: meta.policy_used,
            overhead_vs_optimal: meta.overhead_vs_optimal,
            metadata_bytes: self.metadata_bytes(name).unwrap_or(0),
        })
    }

    /// Deletes an object: removes every data/parity block of every stripe
    /// from alive nodes (blocks on failed nodes are already gone), drops
    /// the metadata record, and reclaims its replica blocks from the data
    /// plane (previously those replicas leaked past delete).
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`].
    pub fn delete(&mut self, name: &str) -> Result<()> {
        let (meta, replicas) = self
            .take_object(name)
            .ok_or_else(|| StoreError::ObjectNotFound(name.to_string()))?;
        self.chunk_cache().invalidate_object(name);
        for sp in &meta.placement {
            for (&node, &block) in sp.nodes.iter().zip(&sp.block_ids) {
                match self.blocks_mut().delete(node, block) {
                    Ok(()) | Err(ClusterError::NodeDown(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        for (node, block) in replicas {
            // A replica rewritten by recovery keeps its tracked id
            // current, but a node that failed after the last recovery
            // may simply no longer hold the block.
            match self.blocks_mut().delete(node, block) {
                Ok(()) | Err(ClusterError::NodeDown(_) | ClusterError::NoSuchBlock { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Verifies — and where possible **heals** — the parity consistency
    /// of every stripe of every object.
    ///
    /// Reads all blocks of each stripe and re-checks the Reed-Solomon
    /// relation; detects silent data corruption that checksumless reads
    /// would miss. Repairs happen in two tiers:
    ///
    /// * Blocks the data plane itself flags — checksum mismatch
    ///   ([`ClusterError::Corrupt`]) or missing on an alive node — are
    ///   rebuilt from the stripe's surviving shards and rewritten in
    ///   place. The healed stripe counts as ok.
    /// * Parity mismatches among checksum-valid blocks (bit rot that
    ///   also recomputed the CRC, i.e. a tampered write) are localized
    ///   by leave-one-out reconstruction: the one block whose exclusion
    ///   makes the stripe verify again is the culprit and is rewritten.
    ///   The stripe still counts as corrupt so the detection is never
    ///   silent.
    ///
    /// Stripes with a block on a **down** node are counted degraded and
    /// left for [`Store::recover_node`].
    ///
    /// The expensive verify/reconstruct math of each stripe fans out
    /// across the store's worker pool; block reads and repair writes stay
    /// serial (the data plane is single-owner).
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for name in self.object_names() {
            let meta = match self.object(&name) {
                Ok(m) => m.clone(),
                Err(_) => continue,
            };

            // Phase 1 (serial): read and classify every block of every
            // stripe of this object.
            let mut jobs: Vec<ScrubJob> = Vec::with_capacity(meta.placement.len());
            for (si, sp) in meta.placement.iter().enumerate() {
                let width = sp.width as usize;
                let mut shards: Vec<Option<Vec<u8>>> = Vec::with_capacity(sp.nodes.len());
                let mut lost: Vec<usize> = Vec::new();
                let mut degraded = false;
                for (i, (&node, &block)) in sp.nodes.iter().zip(&sp.block_ids).enumerate() {
                    match self.blocks().get(node, block) {
                        Ok(b) => {
                            let mut v = b.to_vec();
                            v.resize(width, 0);
                            shards.push(Some(v));
                        }
                        Err(ClusterError::NodeDown(_)) => {
                            degraded = true;
                            break;
                        }
                        // Checksum mismatch or block missing on an
                        // alive node: rebuildable from parity.
                        Err(_) => {
                            shards.push(None);
                            lost.push(i);
                        }
                    }
                }
                jobs.push(ScrubJob {
                    si,
                    width,
                    shards,
                    lost,
                    degraded,
                    verdict: ScrubVerdict::Degraded,
                    sources: 0,
                });
            }

            // Phase 2 (parallel): verify/reconstruct each stripe across
            // the worker pool. Pure codec math over job-owned buffers.
            {
                let rs = self.codec();
                self.pool().for_each_mut(&mut jobs, |_, job| {
                    job.verdict = if job.degraded {
                        ScrubVerdict::Degraded
                    } else if !job.lost.is_empty() {
                        // Single losses go through the code's cheapest
                        // repair path (an LRC local group reads r shards,
                        // not k); multi-loss falls back to full
                        // reconstruction.
                        let avail: Vec<bool> = job.shards.iter().map(|s| s.is_some()).collect();
                        let healed = if let [single] = job.lost[..] {
                            job.sources = rs
                                .repair_sources(single, &avail)
                                .map_or(rs.data_blocks(), |s| s.len());
                            rs.repair_one(&mut job.shards, single, job.width)
                        } else {
                            job.sources =
                                avail.iter().filter(|&&a| a).count().min(rs.data_blocks());
                            rs.reconstruct(&mut job.shards, job.width)
                        };
                        match healed {
                            Ok(()) => ScrubVerdict::Healed,
                            // Too few readable shards: unrecoverable.
                            Err(_) => ScrubVerdict::Unrecoverable,
                        }
                    } else {
                        let full: Vec<&[u8]> = job
                            .shards
                            .iter()
                            .map(|s| s.as_deref().expect("all readable"))
                            .collect();
                        if rs.verify(&full) {
                            ScrubVerdict::Ok
                        } else {
                            ScrubVerdict::Mismatch
                        }
                    };
                });
            }

            // Phase 3 (serial): apply verdicts — rewrite healed blocks,
            // localize tampered ones — and tally the report.
            let k = self.config().ec.k;
            let repaired_before = report.blocks_repaired;
            for job in jobs {
                let sp = &meta.placement[job.si];
                match job.verdict {
                    ScrubVerdict::Degraded => report.stripes_degraded += 1,
                    ScrubVerdict::Ok => report.stripes_ok += 1,
                    ScrubVerdict::Unrecoverable => report.stripes_corrupt += 1,
                    ScrubVerdict::Healed => {
                        // Repair traffic: the heal read `sources` shards
                        // off other nodes to rebuild the lost block(s).
                        self.metrics()
                            .counter("repair_bytes_moved")
                            .add((job.sources * job.width) as u64);
                        for &i in &job.lost {
                            let content = trim_shard(
                                job.shards[i].clone().expect("reconstructed"),
                                &meta,
                                job.si,
                                i,
                                k,
                            );
                            report.blocks_repaired += 1;
                            self.metrics()
                                .node(sp.nodes[i])
                                .counter("scrub_heals")
                                .inc();
                            let _ = self.blocks_mut().put(
                                sp.nodes[i],
                                sp.block_ids[i],
                                Bytes::from(content),
                            );
                        }
                        report.stripes_repaired += 1;
                        report.stripes_ok += 1;
                    }
                    ScrubVerdict::Mismatch => {
                        // Silent corruption that slipped past the CRC.
                        // Localize it: excluding the corrupt block (and
                        // only it) yields a stripe that reconstructs AND
                        // verifies. Rare, so stays serial.
                        report.stripes_corrupt += 1;
                        let full: Vec<Vec<u8>> = job
                            .shards
                            .iter()
                            .map(|s| s.clone().expect("all readable"))
                            .collect();
                        for c in 0..full.len() {
                            let mut cand: Vec<Option<Vec<u8>>> =
                                full.iter().cloned().map(Some).collect();
                            cand[c] = None;
                            if self.codec().reconstruct(&mut cand, job.width).is_err() {
                                continue;
                            }
                            let rebuilt: Vec<Vec<u8>> = cand
                                .into_iter()
                                .map(|s| s.expect("reconstructed"))
                                .collect();
                            let refs: Vec<&[u8]> = rebuilt.iter().map(|v| v.as_slice()).collect();
                            if self.codec().verify(&refs) {
                                let content = trim_shard(rebuilt[c].clone(), &meta, job.si, c, k);
                                report.blocks_repaired += 1;
                                report.stripes_repaired += 1;
                                self.metrics()
                                    .node(sp.nodes[c])
                                    .counter("scrub_heals")
                                    .inc();
                                let _ = self.blocks_mut().put(
                                    sp.nodes[c],
                                    sp.block_ids[c],
                                    Bytes::from(content),
                                );
                                break;
                            }
                        }
                    }
                }
            }
            if report.blocks_repaired > repaired_before {
                // Healed blocks were rewritten: cached views of this
                // object may predate the heal.
                self.chunk_cache().invalidate_object(&name);
            }
        }
        report
    }
}

/// What the parallel verify/reconstruct phase concluded about a stripe.
enum ScrubVerdict {
    /// A block sits on a down node; leave for `recover_node`.
    Degraded,
    /// Parity checks out.
    Ok,
    /// CRC-flagged/missing blocks were rebuilt into `shards`.
    Healed,
    /// Fewer than `k` readable shards remain.
    Unrecoverable,
    /// All blocks readable but parity disagrees (tampered write).
    Mismatch,
}

/// One stripe's scrub work unit; owned buffers so the verify/reconstruct
/// phase can run on pool workers without shared mutable state.
struct ScrubJob {
    si: usize,
    width: usize,
    shards: Vec<Option<Vec<u8>>>,
    lost: Vec<usize>,
    degraded: bool,
    verdict: ScrubVerdict,
    /// Shards the heal read as repair sources (repair-traffic tally).
    sources: usize,
}

/// Trims a reconstructed shard back to its stored size: data bins are
/// stored without implicit padding; parity stays at full stripe width.
fn trim_shard(
    mut shard: Vec<u8>,
    meta: &crate::object::ObjectMeta,
    stripe: usize,
    bin: usize,
    k: usize,
) -> Vec<u8> {
    if bin < k {
        shard.truncate(meta.layout.stripes[stripe].bins[bin].stored_len() as usize);
    }
    shard
}
