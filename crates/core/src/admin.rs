//! Object-store management operations: listing, deletion, metadata heads,
//! and background scrubbing (parity verification) — the operational
//! surface a production deployment of Fusion would expose alongside
//! Put/Get/Query.

use crate::error::{Result, StoreError};
use crate::store::Store;
use fusion_cluster::store::ClusterError;

/// Summary of one stored object (a `HEAD` response).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInfo {
    /// Object name.
    pub name: String,
    /// Logical size in bytes.
    pub size: u64,
    /// Whether the object parsed as an analytics file at Put time.
    pub analytics: bool,
    /// Column chunks (0 for blobs).
    pub chunks: usize,
    /// Stripes in the layout.
    pub stripes: usize,
    /// Layout policy that produced the stripes.
    pub layout: &'static str,
    /// Additional storage overhead vs optimal (fraction).
    pub overhead_vs_optimal: f64,
}

/// Result of a scrub pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripes whose parity checked out.
    pub stripes_ok: usize,
    /// Stripes with at least one unreadable block (failed node).
    pub stripes_degraded: usize,
    /// Stripes whose parity did **not** match their data (silent
    /// corruption).
    pub stripes_corrupt: usize,
}

impl ScrubReport {
    /// True when no corruption was found (degraded stripes are not
    /// corruption — they are repairable by [`Store::recover_node`]).
    pub fn is_clean(&self) -> bool {
        self.stripes_corrupt == 0
    }
}

impl Store {
    /// Lists stored object names with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .object_names()
            .into_iter()
            .filter(|n| n.starts_with(prefix))
            .collect();
        names.sort();
        names
    }

    /// Returns summary metadata for an object.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`].
    pub fn head(&self, name: &str) -> Result<ObjectInfo> {
        let meta = self.object(name)?;
        Ok(ObjectInfo {
            name: meta.name.clone(),
            size: meta.size,
            analytics: meta.file_meta.is_some(),
            chunks: meta.num_chunks(),
            stripes: meta.layout.stripes.len(),
            layout: meta.policy_used,
            overhead_vs_optimal: meta.overhead_vs_optimal,
        })
    }

    /// Deletes an object: removes every data/parity block of every stripe
    /// from alive nodes (blocks on failed nodes are already gone) and
    /// drops the metadata and location map.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`].
    pub fn delete(&mut self, name: &str) -> Result<()> {
        let meta = self
            .take_object(name)
            .ok_or_else(|| StoreError::ObjectNotFound(name.to_string()))?;
        for sp in &meta.placement {
            for (&node, &block) in sp.nodes.iter().zip(&sp.block_ids) {
                match self.blocks_mut().delete(node, block) {
                    Ok(()) | Err(ClusterError::NodeDown(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Ok(())
    }

    /// Verifies the parity consistency of every stripe of every object.
    ///
    /// Reads all blocks of each stripe and re-checks the Reed-Solomon
    /// relation; detects silent data corruption that checksumless reads
    /// would miss. Stripes with unreadable blocks (failed nodes) are
    /// counted as degraded, not corrupt.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for name in self.object_names() {
            let meta = match self.object(&name) {
                Ok(m) => m,
                Err(_) => continue,
            };
            for (si, sp) in meta.placement.iter().enumerate() {
                let width = sp.width as usize;
                let mut shards: Vec<Vec<u8>> = Vec::with_capacity(sp.nodes.len());
                let mut degraded = false;
                for (&node, &block) in sp.nodes.iter().zip(&sp.block_ids) {
                    match self.blocks().get(node, block) {
                        Ok(b) => {
                            let mut v = b.to_vec();
                            v.resize(width, 0);
                            shards.push(v);
                        }
                        Err(_) => {
                            degraded = true;
                            break;
                        }
                    }
                }
                if degraded {
                    report.stripes_degraded += 1;
                    continue;
                }
                let _ = si;
                if self.codec().verify(&shards) {
                    report.stripes_ok += 1;
                } else {
                    report.stripes_corrupt += 1;
                }
            }
        }
        report
    }
}
