//! The Fusion object store: `Put`, `Get`, node failure and recovery.
//! (`Query` lives in [`crate::query`].)
//!
//! Every node in Fusion can coordinate any request; the coordinator for an
//! object is chosen by hashing its name over the alive nodes (paper §5).
//! `Put` parses the analytics footer, runs the configured packer, erasure
//! codes the stripes **for real**, and scatters blocks over `n` random
//! distinct nodes per stripe. `Get` serves ranged reads, transparently
//! reconstructing from parity when nodes have failed.

use crate::cache::ChunkCache;
use crate::config::{LayoutPolicy, PlacementPolicy, QueryMode, StoreConfig};
use crate::error::{Result, StoreError};
use crate::layout::{fac, fixed, items_from_meta, oracle, padding, Layout, PackItem};
use crate::location_map::LocationMap;
use crate::meta::LayoutRecord;
use crate::object::{ObjectMeta, StripePlacement};
use crate::placement::{self, StripeShape};
use bytes::Bytes;
use fusion_cluster::engine::{CostClass, Engine, ResourceKey, Workflow};
use fusion_cluster::fault::{AppliedFault, FaultInjector};
use fusion_cluster::store::{BlockId, BlockStore, ClusterError};
use fusion_cluster::time::Nanos;
use fusion_cluster::topology::Topology;
use fusion_ec::pool::WorkerPool;
use fusion_ec::rs::ReconstructError;
use fusion_ec::stripe::StripeCodec;
use fusion_format::footer::parse_footer;
use fusion_obs::trace::Phase;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// One stripe's shard slots, `None` where the shard was not read.
pub(crate) type ShardBuf = Vec<Option<Vec<u8>>>;

/// Report returned by [`Store::put`].
#[derive(Debug, Clone)]
pub struct PutReport {
    /// Which packer produced the layout (`"fac"`, `"fixed"`, `"padding"`,
    /// `"oracle"`, or `"fixed-fallback"` when FAC exceeded the overhead
    /// threshold).
    pub policy_used: &'static str,
    /// Additional storage overhead vs optimal (fraction).
    pub overhead_vs_optimal: f64,
    /// Real wall-clock time the packer took (the paper's Figure 16c
    /// numerator).
    pub pack_runtime: std::time::Duration,
    /// Simulated end-to-end Put latency on the virtual clock.
    pub simulated_latency: Nanos,
    /// Total bytes stored (data + padding + parity + location map
    /// replicas).
    pub stored_bytes: u64,
    /// Number of stripes created.
    pub stripes: usize,
    /// Number of column chunks detected (0 for blobs).
    pub chunks: usize,
}

/// Report returned by [`Store::recover_node`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blocks the node lost while it was down (reported by the data
    /// plane at revival; the repair below rebuilds object blocks and
    /// location-map replicas, so `stripes_repaired` can differ).
    pub blocks_lost: usize,
    /// Stripes that needed repair.
    pub stripes_repaired: usize,
    /// Bytes written to the recovered node.
    pub bytes_restored: u64,
    /// Repair traffic: bytes read from surviving nodes to rebuild the
    /// lost blocks (the number a repair-efficient code shrinks).
    pub repair_bytes_moved: u64,
    /// Simulated wall time of the repair on the virtual clock: per stripe,
    /// read `k` surviving blocks in parallel, ship them to the recovering
    /// node, decode, and write the rebuilt block.
    pub simulated_latency: Nanos,
}

/// The per-object location metadata the store keeps and replicates: the
/// paper's full map under the stored-map policies, or the compact layout
/// record (DESIGN.md §16) under [`PlacementPolicy::Deterministic`], where
/// chunk homes are recomputed on lookup instead of remembered per chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectMetaRecord {
    /// Paper wire format: 8 bytes per chunk.
    Stored(LocationMap),
    /// Compact fixed-header record; locations recomputed on lookup.
    Compact(LayoutRecord),
}

impl ObjectMetaRecord {
    /// Serializes whichever wire format the entry holds.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            ObjectMetaRecord::Stored(m) => m.to_bytes(),
            ObjectMetaRecord::Compact(r) => r.to_bytes(),
        }
    }

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> u64 {
        match self {
            ObjectMetaRecord::Stored(m) => m.byte_size(),
            ObjectMetaRecord::Compact(r) => r.byte_size(),
        }
    }
}

/// An object's metadata-plane entry: the record plus where its replicas
/// live on the data plane — tracked by block id so delete can reclaim
/// them and recovery can rewrite them in place.
#[derive(Debug, Clone)]
struct MetaEntry {
    record: ObjectMetaRecord,
    replicas: Vec<(usize, BlockId)>,
}

/// The Fusion analytics object store (or, with
/// [`StoreConfig::baseline`], a MinIO/Ceph-class baseline).
///
/// # Examples
///
/// ```
/// use fusion_core::config::StoreConfig;
/// use fusion_core::store::Store;
/// use fusion_format::prelude::*;
///
/// let schema = Schema::new(vec![Field::new("x", LogicalType::Int64)]);
/// let table = Table::new(schema, vec![ColumnData::Int64((0..1000).collect())])?;
/// let bytes = write_table(&table, WriteOptions { rows_per_group: 250 })?;
///
/// let mut store = Store::new(StoreConfig::fusion())?;
/// let report = store.put("t", bytes.clone())?;
/// assert_eq!(report.chunks, 4);
/// assert_eq!(store.get("t", 0, bytes.len() as u64)?, bytes);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Store {
    config: StoreConfig,
    code: Arc<dyn StripeCodec>,
    /// Failure-domain layout resolved from the cluster spec at
    /// construction (see [`fusion_cluster::spec::ClusterSpec::effective_topology`]).
    topology: Topology,
    blocks: BlockStore,
    objects: HashMap<String, ObjectMeta>,
    maps: HashMap<String, MetaEntry>,
    /// Membership epochs compact records resolve against: each entry is
    /// the alive-node set some object was placed over (index = epoch).
    epochs: Vec<Vec<usize>>,
    /// Placement-relevant shape of the configured code, captured by value
    /// so deterministic placement needs no codec call per slot.
    shape: StripeShape,
    next_block: u64,
    rng: SmallRng,
    /// Straggler multipliers mirrored from the fault injector; fed into
    /// every simulation this store runs.
    slowdowns: HashMap<usize, f64>,
    /// Failed-then-revived nodes and how many RPC attempts to them time
    /// out before one succeeds (drives [`fusion_cluster::RetryPolicy`]).
    flaky: HashMap<usize, u32>,
    /// Worker pool for stripe-level encode/scrub/reconstruct fan-out
    /// (width = `StoreConfig::ec_threads`).
    pool: WorkerPool,
    /// Recycled parity buffer sets: `encode_into` reuses these across
    /// puts so steady-state encoding allocates nothing per stripe.
    parity_scratch: Vec<Vec<Vec<u8>>>,
    /// Per-node encoded-chunk cache: repeated queries skip the chunk
    /// read + parse (capacity from [`StoreConfig::chunk_cache_bytes`]).
    chunk_cache: ChunkCache,
}

/// Cap on recycled parity buffer sets held between puts.
const PARITY_SCRATCH_CAP: usize = 32;

/// Longest object key the request boundary accepts, in bytes (S3 caps
/// keys at 1 KiB; anything longer from the wire is hostile or broken).
pub const MAX_KEY_BYTES: usize = 1024;

/// Validates an object key at the request boundary: non-empty, at most
/// [`MAX_KEY_BYTES`] bytes. Service workers feed untrusted wire input
/// straight into [`Store::get`]/[`Store::put`]/query, so a bad key must
/// come back as a typed [`StoreError::InvalidRequest`], never a panic or
/// an unbounded allocation keyed on attacker-controlled strings.
pub fn validate_key(name: &str) -> Result<()> {
    if name.is_empty() {
        return Err(StoreError::InvalidRequest("empty object key".into()));
    }
    if name.len() > MAX_KEY_BYTES {
        return Err(StoreError::InvalidRequest(format!(
            "object key of {} bytes exceeds the {MAX_KEY_BYTES}-byte cap",
            name.len()
        )));
    }
    Ok(())
}

/// One stripe's encode work unit: assembled data blocks in, parity out.
/// Jobs are mutated on pool workers, so everything lives inside the job —
/// no shared mutable state on the hot path.
struct StripeJob {
    data: Vec<Vec<u8>>,
    parity: Vec<Vec<u8>>,
}

/// One lost block's repair work unit for [`Store::recover_node`]:
/// survivors are read serially, reconstruction fans out across the pool,
/// results are applied serially.
struct RepairJob {
    bid: BlockId,
    bin: usize,
    width: usize,
    /// Bytes actually stored for this bin (data bins are unpadded).
    stored_len: usize,
    shards: Vec<Option<Vec<u8>>>,
    /// Nodes the survivor shards were read from (time-plane model and
    /// repair-traffic accounting) — the code's cheapest repair set, a
    /// local group for LRC single-shard repair.
    sources: Vec<usize>,
    /// Bytes read off those nodes for this repair.
    bytes_moved: u64,
    outcome: std::result::Result<(), ReconstructError>,
}

impl Store {
    /// Creates an empty store over a fresh simulated cluster.
    ///
    /// # Errors
    ///
    /// Invalid erasure-code parameters, or fewer cluster nodes than `n`.
    pub fn new(config: StoreConfig) -> Result<Store> {
        let code = config.ec.build_codec(config.codec)?;
        if config.cluster.nodes < config.ec.n {
            return Err(StoreError::Internal(format!(
                "cluster has {} nodes but {} needs {}",
                config.cluster.nodes, config.ec, config.ec.n
            )));
        }
        let topology = config.cluster.effective_topology();
        let shape = StripeShape::from_codec(&*code);
        Ok(Store {
            code,
            topology,
            blocks: BlockStore::new(config.cluster.nodes),
            objects: HashMap::new(),
            maps: HashMap::new(),
            epochs: Vec::new(),
            shape,
            next_block: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            slowdowns: HashMap::new(),
            flaky: HashMap::new(),
            pool: WorkerPool::new(config.ec_threads),
            parity_scratch: Vec::new(),
            chunk_cache: ChunkCache::new(config.chunk_cache_bytes as usize),
            config,
        })
    }

    /// The stripe worker pool (shared by put, scrub, and recovery).
    pub(crate) fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Returns a parity buffer set to the scratch pool for reuse by the
    /// next encode (bounded; excess sets are dropped).
    fn recycle_parity(&mut self, mut parity: Vec<Vec<u8>>) {
        if self.parity_scratch.len() < PARITY_SCRATCH_CAP {
            for p in parity.iter_mut() {
                p.clear();
            }
            self.parity_scratch.push(parity);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The erasure codec.
    pub fn codec(&self) -> &dyn StripeCodec {
        &*self.code
    }

    /// The failure-domain topology this store places shards against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Metadata of a stored object.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`].
    pub fn object(&self, name: &str) -> Result<&ObjectMeta> {
        self.objects
            .get(name)
            .ok_or_else(|| StoreError::ObjectNotFound(name.to_string()))
    }

    /// Names of stored objects (unordered).
    pub fn object_names(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }

    /// The location map of an object plus its replica nodes. Under the
    /// deterministic policy the map is materialized from the compact
    /// record — bit-identical to what a stored map would contain.
    pub fn location_map(&self, name: &str) -> Option<(LocationMap, Vec<usize>)> {
        let entry = self.maps.get(name)?;
        let nodes = entry.replicas.iter().map(|&(n, _)| n).collect();
        let map = match &entry.record {
            ObjectMetaRecord::Stored(map) => map.clone(),
            ObjectMetaRecord::Compact(rec) => {
                let meta = self.objects.get(name)?;
                rec.materialize(
                    meta,
                    self.config.seed,
                    placement::object_key("", name),
                    &self.shape,
                    &self.epochs[rec.epoch as usize],
                    &self.topology,
                )
                .ok()?
            }
        };
        Some((map, nodes))
    }

    /// The raw metadata record of an object (stored map or compact).
    pub fn meta_record(&self, name: &str) -> Option<&ObjectMetaRecord> {
        self.maps.get(name).map(|e| &e.record)
    }

    /// Serialized metadata bytes held for an object across its replicas.
    pub fn metadata_bytes(&self, name: &str) -> Option<u64> {
        self.maps
            .get(name)
            .map(|e| e.record.byte_size() * e.replicas.len() as u64)
    }

    /// Resolves the node hosting chunk `ordinal` of `name` from the
    /// metadata plane alone — the hot-path lookup the compact record is
    /// optimized for. Counts into the `meta_lookups` /
    /// `meta_lookup_misses` counters and the `meta_lookup_ns` histogram
    /// of the cluster registry.
    pub fn chunk_node(&self, name: &str, ordinal: usize) -> Option<usize> {
        let t0 = std::time::Instant::now();
        let out = self.maps.get(name).and_then(|entry| match &entry.record {
            ObjectMetaRecord::Stored(map) => map.node_of(ordinal),
            ObjectMetaRecord::Compact(rec) => {
                let c = u32::try_from(ordinal).ok().filter(|&c| c < rec.chunks)?;
                Some(rec.node_of(
                    c,
                    self.config.seed,
                    placement::object_key("", name),
                    &self.shape,
                    &self.epochs[rec.epoch as usize],
                    &self.topology,
                ))
            }
        });
        let metrics = self.metrics();
        metrics.counter("meta_lookups").inc();
        if out.is_none() {
            metrics.counter("meta_lookup_misses").inc();
        }
        metrics
            .histogram("meta_lookup_ns")
            .record(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Reads an object's location metadata back off the data plane (first
    /// readable replica), validating the payload against the cluster size
    /// before use — an out-of-range node id is a typed error
    /// ([`crate::location_map::LocationMapError::NodeOutOfRange`]), not a
    /// silently misrouted read.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`], [`StoreError::Metadata`] on a
    /// malformed or out-of-range payload, or an internal error when no
    /// replica is readable.
    pub fn read_location_map(&self, name: &str) -> Result<LocationMap> {
        let entry = self
            .maps
            .get(name)
            .ok_or_else(|| StoreError::ObjectNotFound(name.to_string()))?;
        let nodes = self.config.cluster.nodes;
        for &(node, block) in &entry.replicas {
            let Ok(bytes) = self.blocks.get(node, block) else {
                continue;
            };
            return match &entry.record {
                ObjectMetaRecord::Stored(_) => Ok(LocationMap::from_bytes_checked(&bytes, nodes)?),
                ObjectMetaRecord::Compact(_) => {
                    let rec = LayoutRecord::from_bytes_checked(&bytes, nodes)?;
                    let meta = self.object(name)?;
                    Ok(rec.materialize(
                        meta,
                        self.config.seed,
                        placement::object_key("", name),
                        &self.shape,
                        &self.epochs[rec.epoch as usize],
                        &self.topology,
                    )?)
                }
            };
        }
        Err(StoreError::Internal(format!(
            "no readable location-map replica for {name}"
        )))
    }

    /// Total bytes stored across the cluster (blocks + map replicas).
    pub fn stored_bytes(&self) -> u64 {
        self.blocks.total_bytes()
    }

    /// Direct access to the block data plane (read-only uses in queries
    /// and tests).
    pub fn blocks(&self) -> &BlockStore {
        &self.blocks
    }

    /// The cluster-wide metrics registry (shared with the data plane's
    /// per-node serve counters; store-level counters — shard
    /// reconstructions, scrub heals, fault injections — land here too).
    pub fn metrics(&self) -> &fusion_obs::metrics::MetricsRegistry {
        self.blocks.metrics()
    }

    /// Mutable access to the data plane (management operations and fault
    /// injection in tests).
    pub fn blocks_mut(&mut self) -> &mut BlockStore {
        &mut self.blocks
    }

    /// Removes and returns an object's metadata plus the `(node, block)`
    /// location of every metadata replica (used by delete, which must
    /// reclaim the replica blocks too).
    pub(crate) fn take_object(
        &mut self,
        name: &str,
    ) -> Option<(ObjectMeta, Vec<(usize, BlockId)>)> {
        let replicas = self
            .maps
            .remove(name)
            .map(|e| e.replicas)
            .unwrap_or_default();
        self.objects.remove(name).map(|meta| (meta, replicas))
    }

    /// The coordinator node for an object: hash of the name over alive
    /// nodes (paper §5 — every node can coordinate; no dedicated
    /// coordinator).
    ///
    /// # Errors
    ///
    /// [`StoreError::Unavailable`] when no node is alive — a fully-dead
    /// cluster must reject the request, not divide by zero (this is
    /// reachable from untrusted wire input in service mode).
    pub fn coordinator_of(&self, name: &str) -> Result<usize> {
        let alive = self.blocks.alive_nodes();
        if alive.is_empty() {
            return Err(StoreError::Unavailable(
                "no alive nodes to coordinate the request".into(),
            ));
        }
        let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        Ok(alive[(h % alive.len() as u64) as usize])
    }

    fn fresh_block(&mut self) -> BlockId {
        self.next_block += 1;
        BlockId(self.next_block)
    }

    /// The epoch index for a membership set, reusing an existing epoch
    /// when the same set was already recorded (membership changes are
    /// rare, so the history stays tiny).
    fn epoch_of(&mut self, members: &[usize]) -> u32 {
        match self.epochs.iter().rposition(|m| m == members) {
            Some(i) => i as u32,
            None => {
                self.epochs.push(members.to_vec());
                (self.epochs.len() - 1) as u32
            }
        }
    }

    /// Picks the `n` nodes of one stripe, shard `i` on the `i`-th
    /// returned node.
    ///
    /// Under [`PlacementPolicy::DomainAware`], a greedy pass over the
    /// shuffled alive nodes enforces two invariants against the cluster
    /// topology: no failure domain receives more than `tolerance` shards
    /// of the stripe (so a whole-domain outage stays within what the
    /// code guarantees to recover), and no domain receives two shards of
    /// the same local group (so single-shard repair survives any one
    /// domain outage). On a flat topology every node is its own domain,
    /// both constraints are vacuous, and the greedy pass degenerates to
    /// exactly the naive shuffle-truncate — byte-identical placements
    /// for the same seed.
    ///
    /// If the constraints are infeasible (e.g. too few domains), the
    /// pass retries with fresh shuffles and finally relaxes to naive
    /// placement rather than failing the put.
    ///
    /// Under [`PlacementPolicy::Deterministic`] the pick is instead a
    /// pure rendezvous function of `(seed, object key, stripe,
    /// membership)` — no RNG is consumed, so the Naive/DomainAware
    /// random streams (and their placements) are untouched by the
    /// policy existing.
    fn place_stripe(&mut self, alive: &[usize], okey: u64, stripe: usize) -> Vec<usize> {
        if self.config.placement == PlacementPolicy::Deterministic {
            return placement::place_stripe(
                self.config.seed,
                okey,
                stripe as u64,
                &self.shape,
                alive,
                &self.topology,
            );
        }
        let n = self.code.total_blocks();
        let naive = self.config.placement == PlacementPolicy::Naive || self.topology.is_flat();
        let mut nodes = alive.to_vec();
        for _ in 0..8 {
            nodes.shuffle(&mut self.rng);
            if naive {
                nodes.truncate(n);
                return nodes;
            }
            if let Some(picked) = self.try_place(&nodes) {
                return picked;
            }
        }
        // Relaxation: the topology cannot satisfy the invariants.
        nodes.truncate(n);
        nodes
    }

    /// One greedy placement attempt over an already-shuffled node order.
    fn try_place(&self, nodes: &[usize]) -> Option<Vec<usize>> {
        let n = self.code.total_blocks();
        let tolerance = self.code.tolerance();
        let mut picked = Vec::with_capacity(n);
        let mut used = vec![false; nodes.len()];
        let mut per_domain: HashMap<usize, usize> = HashMap::new();
        let mut group_domains: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        for shard in 0..n {
            let group = self.code.placement_group(shard);
            let slot = nodes.iter().enumerate().position(|(i, &node)| {
                if used[i] {
                    return false;
                }
                let d = self.topology.domain_of(node);
                per_domain.get(&d).copied().unwrap_or(0) < tolerance
                    && group.is_none_or(|g| !group_domains.contains(&(g, d)))
            })?;
            used[slot] = true;
            let node = nodes[slot];
            let d = self.topology.domain_of(node);
            *per_domain.entry(d).or_insert(0) += 1;
            if let Some(g) = group {
                group_domains.insert((g, d));
            }
            picked.push(node);
        }
        Some(picked)
    }

    /// Picks `count` replica nodes for a location map, spread across
    /// failure domains so no single-domain outage can take every replica
    /// (domains are filled round-robin, least-loaded first). Flat
    /// topologies and naive placement reduce to shuffle-truncate.
    fn place_replicas(&mut self, mut nodes: Vec<usize>, count: usize, okey: u64) -> Vec<usize> {
        if self.config.placement == PlacementPolicy::Deterministic {
            return placement::place_replicas(
                self.config.seed,
                okey,
                count,
                &nodes,
                &self.topology,
            );
        }
        nodes.shuffle(&mut self.rng);
        let naive = self.config.placement == PlacementPolicy::Naive || self.topology.is_flat();
        if naive {
            nodes.truncate(count);
            return nodes;
        }
        let mut per_domain: HashMap<usize, usize> = HashMap::new();
        let mut picked = Vec::with_capacity(count);
        let mut remaining = nodes;
        while picked.len() < count && !remaining.is_empty() {
            // Least-loaded domain first; ties broken by shuffle order.
            let (i, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|&(_, &node)| {
                    per_domain
                        .get(&self.topology.domain_of(node))
                        .copied()
                        .unwrap_or(0)
                })
                .expect("nonempty");
            let node = remaining.remove(i);
            *per_domain.entry(self.topology.domain_of(node)).or_insert(0) += 1;
            picked.push(node);
        }
        picked
    }

    /// Stores an object. Analytics files (recognized by the trailing
    /// magic) are packed with the configured layout policy; other blobs use
    /// fixed blocks.
    ///
    /// # Errors
    ///
    /// Duplicate names, corrupt analytics footers, or cluster failures.
    pub fn put(&mut self, name: &str, data: Vec<u8>) -> Result<PutReport> {
        validate_key(name)?;
        if self.objects.contains_key(name) {
            return Err(StoreError::ObjectExists(name.to_string()));
        }
        let size = data.len() as u64;
        let ec = self.config.ec;

        // 1. Identify computable units from the footer, if analytics.
        let file_meta = parse_footer(&data).ok();
        let items: Vec<PackItem> = match &file_meta {
            Some(meta) => items_from_meta(meta, size),
            None => Vec::new(),
        };

        // 2. Pack (timed for Figure 16c).
        let t0 = std::time::Instant::now();
        let (layout, policy_used): (Layout, &'static str) = match self.config.layout {
            LayoutPolicy::Fixed => (
                fixed::pack(size, self.config.block_size, ec.k, &items),
                "fixed",
            ),
            LayoutPolicy::Padding if !items.is_empty() => (
                padding::pack(self.config.block_size, ec.k, &items).layout,
                "padding",
            ),
            LayoutPolicy::Padding => (
                fixed::pack(size, self.config.block_size, ec.k, &items),
                "fixed",
            ),
            LayoutPolicy::Fac if !items.is_empty() => {
                let l = fac::pack(ec.k, &items);
                if l.overhead_vs_optimal(ec) > self.config.overhead_threshold {
                    // Paper §4.2: fall back to fixed blocks when the
                    // budget cannot be met.
                    (
                        fixed::pack(size, self.config.block_size, ec.k, &items),
                        "fixed-fallback",
                    )
                } else {
                    (l, "fac")
                }
            }
            LayoutPolicy::Fac => (
                fixed::pack(size, self.config.block_size, ec.k, &items),
                "fixed",
            ),
            LayoutPolicy::Oracle { deadline } if !items.is_empty() => {
                (oracle::pack(ec.k, &items, deadline).layout, "oracle")
            }
            LayoutPolicy::Oracle { .. } => (
                fixed::pack(size, self.config.block_size, ec.k, &items),
                "fixed",
            ),
        };
        let pack_runtime = t0.elapsed();
        let overhead = layout.overhead_vs_optimal(ec);

        // 3. Materialize blocks: encode parity for real, place stripes on
        //    n random distinct nodes.
        let alive = self.blocks.alive_nodes();
        if alive.len() < ec.n {
            return Err(StoreError::Internal(format!(
                "only {} alive nodes, {} required",
                alive.len(),
                ec.n
            )));
        }
        let okey = placement::object_key("", name);
        let mut placement = Vec::with_capacity(layout.stripes.len());
        let mut stored_bytes = 0u64;

        // Assemble data block contents (pieces + physical padding) for
        // every stripe, pairing each with a recycled parity buffer set.
        let mut jobs: Vec<StripeJob> = Vec::with_capacity(layout.stripes.len());
        for stripe in &layout.stripes {
            let data_blocks: Vec<Vec<u8>> = stripe
                .bins
                .iter()
                .map(|b| {
                    let mut buf = Vec::with_capacity(b.stored_len() as usize);
                    for p in &b.pieces {
                        buf.extend_from_slice(&data[p.start as usize..p.end as usize]);
                    }
                    buf.resize(buf.len() + b.physical_pad as usize, 0);
                    buf
                })
                .collect();
            jobs.push(StripeJob {
                data: data_blocks,
                parity: self.parity_scratch.pop().unwrap_or_default(),
            });
        }

        // Encode all stripes across the worker pool. Each job owns its
        // buffers; the codec (and its coefficient table cache) is shared
        // read-only, so workers never allocate or synchronize.
        {
            let code = &self.code;
            self.pool.for_each_mut(&mut jobs, |_, job| {
                code.encode_into(&job.data, &mut job.parity)
            });
        }

        // Place each stripe on n random distinct nodes (serial: placement
        // consumes the store RNG and mutates the data plane).
        for (si, (stripe, job)) in layout.stripes.iter().zip(jobs).enumerate() {
            let width = stripe.block_size();
            let StripeJob { data, parity } = job;
            debug_assert!(parity.iter().all(|p| p.len() as u64 == width));

            let nodes = self.place_stripe(&alive, okey, si);
            let mut block_ids = Vec::with_capacity(ec.n);
            for (i, content) in data.into_iter().enumerate() {
                let id = self.fresh_block();
                stored_bytes += content.len() as u64;
                self.blocks.put(nodes[i], id, Bytes::from(content))?;
                block_ids.push(id);
            }
            for (p, content) in parity.iter().enumerate() {
                let id = self.fresh_block();
                stored_bytes += content.len() as u64;
                self.blocks
                    .put(nodes[ec.k + p], id, Bytes::copy_from_slice(content))?;
                block_ids.push(id);
            }
            self.recycle_parity(parity);
            placement.push(StripePlacement {
                nodes,
                block_ids,
                width,
            });
        }

        let meta = ObjectMeta::new(
            name.to_string(),
            size,
            layout,
            placement,
            file_meta,
            policy_used,
            overhead,
        );

        // 4. Build the metadata record — the paper's full map, or the
        //    compact layout record under deterministic placement (with
        //    the stored map as its differential oracle; DESIGN.md §16) —
        //    and replicate it to k + 1 nodes spread across domains.
        let record = if self.config.placement == PlacementPolicy::Deterministic {
            let epoch = self.epoch_of(&alive);
            let rec = LayoutRecord::from_meta(
                &meta,
                epoch,
                ec,
                self.config.seed,
                okey,
                &self.shape,
                &alive,
                &self.topology,
            );
            debug_assert_eq!(
                rec.materialize(
                    &meta,
                    self.config.seed,
                    okey,
                    &self.shape,
                    &alive,
                    &self.topology
                ),
                LocationMap::build(&meta),
                "compact record must materialize the oracle map"
            );
            ObjectMetaRecord::Compact(rec)
        } else {
            ObjectMetaRecord::Stored(LocationMap::build(&meta)?)
        };
        let map_bytes = record.to_bytes();
        let map_nodes = self.place_replicas(alive, ec.k + 1, okey);
        let mut replicas = Vec::with_capacity(map_nodes.len());
        for &n in &map_nodes {
            let id = self.fresh_block();
            stored_bytes += map_bytes.len() as u64;
            self.blocks.put(n, id, Bytes::from(map_bytes.clone()))?;
            replicas.push((n, id));
        }

        // 5. Simulate the Put on the virtual clock.
        let workflow = self.put_workflow(
            &meta,
            size,
            stored_bytes,
            pack_runtime,
            map_bytes.len() as u64,
            &map_nodes,
        );
        let report = Engine::new(self.config.cluster.clone()).run_closed_loop(vec![vec![workflow]]);
        let simulated_latency = report.stats[0].latency;

        let stripes = meta.layout.stripes.len();
        let chunks = meta.num_chunks();
        self.objects.insert(name.to_string(), meta);
        self.maps
            .insert(name.to_string(), MetaEntry { record, replicas });

        Ok(PutReport {
            policy_used,
            overhead_vs_optimal: overhead,
            pack_runtime,
            simulated_latency,
            stored_bytes,
            stripes,
            chunks,
        })
    }

    /// Builds the virtual-time workflow of a Put: client ships the object
    /// to the coordinator; the coordinator packs and erasure codes; blocks
    /// fan out to their nodes and are written to disk; the metadata
    /// record fans out to its replica nodes (charged under
    /// [`Phase::Metadata`], so the metadata plane's RPC cost is visible
    /// in the phase breakdown).
    fn put_workflow(
        &self,
        meta: &ObjectMeta,
        size: u64,
        stored_bytes: u64,
        pack_runtime: std::time::Duration,
        meta_bytes: u64,
        replicas: &[usize],
    ) -> Workflow {
        let cost = &self.config.cluster.cost;
        // Put just wrote this object's blocks, so at least one node is
        // alive; the fallback keeps this modelling path infallible anyway.
        let coord = self.coordinator_of(&meta.name).unwrap_or(0);
        let mut wf = Workflow::new();
        // Client -> coordinator: the whole object.
        let tx = wf.step(
            ResourceKey::ClientNicTx,
            cost.wire(size),
            CostClass::Network,
            &[],
        );
        wf.transfer_bytes(tx, size);
        let lat = wf.step(
            ResourceKey::Delay,
            cost.rpc_overhead,
            CostClass::Network,
            &[tx],
        );
        let rx = wf.step(
            ResourceKey::NicRx(coord),
            cost.wire(size),
            CostClass::Network,
            &[lat],
        );
        // Pack (real measured runtime) + erasure encode.
        let pack = wf.step(
            ResourceKey::Cpu(coord),
            Nanos::from_secs_f64(pack_runtime.as_secs_f64()),
            CostClass::Processing,
            &[rx],
        );
        let encode = wf.step(
            ResourceKey::Cpu(coord),
            cost.ec_at(stored_bytes, self.config.codec_speedup()),
            CostClass::Processing,
            &[pack],
        );
        // Fan blocks out to their nodes.
        for sp in &meta.placement {
            for (&node, _) in sp.nodes.iter().zip(&sp.block_ids) {
                let bytes = sp.width; // conservative: every block ≤ width
                if node == coord {
                    wf.step(
                        ResourceKey::Disk(node),
                        cost.disk_read(bytes),
                        CostClass::DiskRead,
                        &[encode],
                    );
                    continue;
                }
                let tx = wf.step(
                    ResourceKey::NicTx(coord),
                    cost.wire(bytes),
                    CostClass::Network,
                    &[encode],
                );
                wf.transfer_bytes(tx, bytes);
                let lat = wf.step(
                    ResourceKey::Delay,
                    cost.rpc_overhead,
                    CostClass::Network,
                    &[tx],
                );
                let rx = wf.step(
                    ResourceKey::NicRx(node),
                    cost.wire(bytes),
                    CostClass::Network,
                    &[lat],
                );
                wf.step(
                    ResourceKey::Disk(node),
                    cost.disk_read(bytes),
                    CostClass::DiskRead,
                    &[rx],
                );
            }
        }
        // Metadata plane: the location record fans out to its replicas.
        let prev = wf.set_phase(Phase::Metadata);
        for &node in replicas {
            if node == coord {
                wf.step(
                    ResourceKey::Disk(node),
                    cost.disk_read(meta_bytes),
                    CostClass::DiskRead,
                    &[encode],
                );
                continue;
            }
            let tx = wf.step(
                ResourceKey::NicTx(coord),
                cost.wire(meta_bytes),
                CostClass::Network,
                &[encode],
            );
            wf.transfer_bytes(tx, meta_bytes);
            let lat = wf.step(
                ResourceKey::Delay,
                cost.rpc_overhead,
                CostClass::Network,
                &[tx],
            );
            let rx = wf.step(
                ResourceKey::NicRx(node),
                cost.wire(meta_bytes),
                CostClass::Network,
                &[lat],
            );
            wf.step(
                ResourceKey::Disk(node),
                cost.disk_read(meta_bytes),
                CostClass::DiskRead,
                &[rx],
            );
        }
        wf.set_phase(prev);
        wf
    }

    /// Reads `len` bytes at `offset`. Transparently reconstructs from
    /// parity when a hosting node is down, the block is missing (a node
    /// that revived empty), or its checksum no longer matches (detected
    /// bit rot) — a degraded read. Corruption is thus never served and
    /// never fatal while the stripe stays recoverable.
    ///
    /// # Errors
    ///
    /// Unknown object, out-of-range request, or unrecoverable data loss.
    pub fn get(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        validate_key(name)?;
        let meta = self.object(name)?;
        // `offset + len` on untrusted wire input can wrap u64 and sneak
        // past the range check; checked arithmetic keeps it typed.
        let end = offset.checked_add(len).ok_or_else(|| {
            StoreError::InvalidRequest(format!("range {offset}+{len} overflows u64"))
        })?;
        if end > meta.size {
            return Err(StoreError::OutOfRange {
                offset,
                len,
                size: meta.size,
            });
        }
        if len == 0 {
            // A zero-length range inside the object is a valid no-op read;
            // skip the locate fan-out entirely.
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(len as usize);
        for frag in meta.locate(offset, len) {
            match self.blocks.get_range(
                frag.node,
                frag.block,
                frag.offset_in_block as usize,
                frag.len as usize,
            ) {
                Ok(bytes) => {
                    // A healthy block may still be shorter than the
                    // requested range only through corruption.
                    if bytes.len() as u64 != frag.len {
                        return Err(StoreError::Internal(format!(
                            "short read: wanted {}, got {}",
                            frag.len,
                            bytes.len()
                        )));
                    }
                    out.extend_from_slice(&bytes);
                }
                Err(
                    ClusterError::NodeDown(_)
                    | ClusterError::NoSuchBlock { .. }
                    | ClusterError::Corrupt { .. },
                ) => {
                    // Degraded path: rebuild the bin from the stripe.
                    let (stripe_idx, bin_idx) = self
                        .stripe_of(meta, frag.block)
                        .ok_or_else(|| StoreError::Internal("fragment without stripe".into()))?;
                    let rebuilt = self.reconstruct_bin(meta, stripe_idx, bin_idx)?;
                    let s = frag.offset_in_block as usize;
                    let e = s + frag.len as usize;
                    out.extend_from_slice(&rebuilt[s..e]);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(out)
    }

    pub(crate) fn stripe_of(&self, meta: &ObjectMeta, block: BlockId) -> Option<(usize, usize)> {
        for (si, sp) in meta.placement.iter().enumerate() {
            if let Some(bi) = sp.block_ids.iter().position(|&b| b == block) {
                return Some((si, bi));
            }
        }
        None
    }

    /// The shard indices a degraded read of shard `lost` would fetch
    /// right now — the code's cheapest repair set against live
    /// `has_block` probes (for the time-plane model of a degraded read).
    /// `None` when the stripe is unrecoverable.
    pub fn surviving_repair_shards(&self, sp: &StripePlacement, lost: usize) -> Option<Vec<usize>> {
        let n = self.code.total_blocks();
        let avail: Vec<bool> = (0..n)
            .map(|i| i != lost && self.blocks.has_block(sp.nodes[i], sp.block_ids[i]))
            .collect();
        self.code.repair_sources(lost, &avail)
    }

    /// Reads the code's cheapest repair set for shard `lost` of a
    /// stripe, leaving the other slots `None`. For Reed-Solomon this is
    /// any `k` survivors (data shards first); for LRC with an intact
    /// local group it is the group's `r` members — the bandwidth saving
    /// that motivates locally-repairable codes. The plan comes from
    /// cheap `has_block` probes; if a planned source then fails to read
    /// (e.g. bit rot detected on the actual read), it is dropped from
    /// the mask and the plan recomputed.
    pub(crate) fn read_repair_shards(
        &self,
        sp: &StripePlacement,
        lost: usize,
    ) -> Result<(ShardBuf, Vec<usize>)> {
        let n = self.code.total_blocks();
        let mut avail: Vec<bool> = (0..n)
            .map(|i| i != lost && self.blocks.has_block(sp.nodes[i], sp.block_ids[i]))
            .collect();
        loop {
            let sources = self
                .code
                .repair_sources(lost, &avail)
                .ok_or(StoreError::Unrecoverable(ReconstructError::NotRecoverable))?;
            let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
            let mut dropped = None;
            for &s in &sources {
                match self.blocks.get(sp.nodes[s], sp.block_ids[s]) {
                    Ok(b) => shards[s] = Some(b.to_vec()),
                    Err(_) => {
                        dropped = Some(s);
                        break;
                    }
                }
            }
            match dropped {
                Some(s) => avail[s] = false,
                None => return Ok((shards, sources)),
            }
        }
    }

    /// Charges one bin repair to the metrics registry: the rebuilt
    /// shard's node, cluster-wide and per-source repair traffic, and a
    /// degraded-read latency estimate from the cost model (serial disk
    /// read + one RPC + the source shards crossing the wire + decode).
    fn account_repair(&self, sp: &StripePlacement, bin: usize, sources: &[usize], moved: u64) {
        let metrics = self.metrics();
        metrics
            .node(sp.nodes[bin])
            .counter("shards_reconstructed")
            .inc();
        metrics.counter("repair_bytes_moved").add(moved);
        for &s in sources {
            metrics
                .node(sp.nodes[s])
                .counter("repair_bytes_served")
                .add(sp.width);
        }
        let cost = &self.config.cluster.cost;
        let ns = cost.disk_read(sp.width).0
            + cost.rpc_overhead.0
            + cost.wire(sp.width).0 * sources.len() as u64
            + cost
                .ec_at(sp.width * sources.len() as u64, self.config.codec_speedup())
                .0;
        metrics.histogram("degraded_read_ns").record(ns);
    }

    /// Reconstructs the full contents of one data bin from the cheapest
    /// repair set (used by degraded reads and recovery).
    fn reconstruct_bin(&self, meta: &ObjectMeta, stripe: usize, bin: usize) -> Result<Vec<u8>> {
        let sp = &meta.placement[stripe];
        let width = sp.width as usize;
        let (mut shards, sources) = self.read_repair_shards(sp, bin)?;
        self.code.repair_one(&mut shards, bin, width)?;
        // Repair traffic at wire granularity — every fetched shard moves
        // as a full-width block, matching the time-plane network charge.
        // (Cold path: the registry lookups are fine here.)
        let moved = sources.len() as u64 * sp.width;
        self.account_repair(sp, bin, &sources, moved);
        let mut rebuilt = shards[bin].take().expect("reconstructed");
        // Trim back to stored length (implicit padding removed).
        let stored = meta.layout.stripes[stripe].bins[bin].stored_len() as usize;
        debug_assert!(stored <= width);
        rebuilt.truncate(stored);
        Ok(rebuilt)
    }

    /// Marks a node failed. Its blocks are lost until
    /// [`Store::recover_node`].
    ///
    /// # Errors
    ///
    /// Unknown node.
    pub fn fail_node(&mut self, node: usize) -> Result<()> {
        self.blocks.fail_node(node)?;
        // Whatever that node had cached is gone with it; queries must not
        // serve views the data plane can no longer back.
        self.chunk_cache.clear();
        Ok(())
    }

    /// Brings a node back (as an empty replacement) and restores every
    /// block it should hold via erasure-code reconstruction.
    ///
    /// # Errors
    ///
    /// Unknown node or unrecoverable stripes.
    pub fn recover_node(&mut self, node: usize) -> Result<RecoveryReport> {
        let blocks_lost = self.blocks.revive_node(node)?;
        // The replacement node starts cold.
        self.chunk_cache.clear();
        let mut report = RecoveryReport {
            blocks_lost,
            ..RecoveryReport::default()
        };
        // The node answers RPCs again; stop charging retry penalties.
        self.flaky.remove(&node);
        let cost = self.config.cluster.cost.clone();
        let mut wf = Workflow::new();
        let names: Vec<String> = self.objects.keys().cloned().collect();

        // Phase 1 (serial): read each lost block's cheapest repair set,
        // across all objects — the local group for LRC single losses,
        // any k survivors for RS.
        let mut jobs: Vec<RepairJob> = Vec::new();
        for name in &names {
            let meta = self.objects.get(name).expect("object exists");
            for (si, sp) in meta.placement.iter().enumerate() {
                for (bi, (&bnode, &bid)) in sp.nodes.iter().zip(&sp.block_ids).enumerate() {
                    if bnode != node || self.blocks.get(bnode, bid).is_ok() {
                        continue;
                    }
                    let (shards, bytes_moved, source_nodes, outcome) = match self
                        .read_repair_shards(sp, bi)
                    {
                        Ok((shards, sources)) => {
                            // Wire granularity, as in the DES model:
                            // full stripe width per fetched shard.
                            let moved = sources.len() as u64 * sp.width;
                            let nodes: Vec<usize> = sources.iter().map(|&s| sp.nodes[s]).collect();
                            (shards, moved, nodes, Ok(()))
                        }
                        Err(_) => (
                            Vec::new(),
                            0,
                            Vec::new(),
                            Err(ReconstructError::NotRecoverable),
                        ),
                    };
                    // Data bins are stored unpadded; parity at full width.
                    let stored_len = if bi < self.config.ec.k {
                        meta.layout.stripes[si].bins[bi].stored_len() as usize
                    } else {
                        sp.width as usize
                    };
                    jobs.push(RepairJob {
                        bid,
                        bin: bi,
                        width: sp.width as usize,
                        stored_len,
                        shards,
                        sources: source_nodes,
                        bytes_moved,
                        outcome,
                    });
                }
            }
        }

        // Phase 2 (parallel): rebuild every lost block across the worker
        // pool. Each job owns its shard buffers.
        {
            let code = &self.code;
            self.pool.for_each_mut(&mut jobs, |_, job| {
                if job.outcome.is_ok() {
                    job.outcome = code.repair_one(&mut job.shards, job.bin, job.width);
                }
            });
        }

        // Phase 3 (serial): surface failures, write rebuilt blocks, and
        // model each stripe repair on the virtual clock.
        for mut job in jobs {
            job.outcome?;
            let mut content = job.shards[job.bin].take().expect("reconstructed");
            content.truncate(job.stored_len);
            report.stripes_repaired += 1;
            report.bytes_restored += content.len() as u64;
            report.repair_bytes_moved += job.bytes_moved;
            let metrics = self.metrics();
            metrics.node(node).counter("shards_reconstructed").inc();
            metrics.counter("repair_bytes_moved").add(job.bytes_moved);

            let width = job.width as u64;
            let mut arrived = Vec::new();
            for &src in &job.sources {
                metrics.node(src).counter("repair_bytes_served").add(width);
                let read = wf.step(
                    ResourceKey::Disk(src),
                    cost.disk_read(width),
                    CostClass::DiskRead,
                    &[],
                );
                let tx = wf.step(
                    ResourceKey::NicTx(src),
                    cost.wire(width),
                    CostClass::Network,
                    &[read],
                );
                wf.transfer_bytes(tx, width);
                arrived.push(wf.step(
                    ResourceKey::NicRx(node),
                    cost.wire(width),
                    CostClass::Network,
                    &[tx],
                ));
            }
            // Decode cost scales with the bytes actually combined — a
            // local-group repair touches r shards, not k.
            let decode = wf.step(
                ResourceKey::Cpu(node),
                cost.ec_at(
                    width * job.sources.len() as u64,
                    self.config.codec_speedup(),
                ),
                CostClass::Processing,
                &arrived,
            );
            wf.step(
                ResourceKey::Disk(node),
                cost.disk_read(content.len() as u64),
                CostClass::DiskRead,
                &[decode],
            );
            self.blocks.put(node, job.bid, Bytes::from(content))?;
        }

        // Restore metadata-record replicas that lived on the node. The
        // record is recomputable from object metadata, so this is a
        // local rewrite; the tracked block id is refreshed in place.
        for name in &names {
            let todo = self.maps.get(name).and_then(|entry| {
                entry
                    .replicas
                    .iter()
                    .position(|&(n, _)| n == node)
                    .map(|i| (i, entry.record.to_bytes()))
            });
            if let Some((i, bytes)) = todo {
                let id = self.fresh_block();
                report.bytes_restored += bytes.len() as u64;
                self.blocks.put(node, id, Bytes::from(bytes))?;
                if let Some(entry) = self.maps.get_mut(name) {
                    entry.replicas[i].1 = id;
                }
            }
        }
        if !wf.is_empty() {
            let run = Engine::new(self.config.cluster.clone())
                .with_slowdowns(self.slowdowns.clone())
                .run_closed_loop(vec![vec![wf]]);
            report.simulated_latency = run.stats[0].latency;
        }
        Ok(report)
    }

    /// Advances a fault injector to virtual time `to` against this
    /// store's data plane, then mirrors the injector's straggler and
    /// flaky-node state so subsequent queries and repairs model
    /// slowdowns and retry penalties. Returns what fired.
    pub fn apply_faults(&mut self, inj: &mut FaultInjector, to: Nanos) -> Vec<AppliedFault> {
        let applied = inj.advance(to, &mut self.blocks);
        if !applied.is_empty() {
            // Failed/corrupted/revived blocks invalidate cached views.
            self.chunk_cache.clear();
        }
        // Export the injector's per-node fault/revival tallies into the
        // cluster registry (idempotent delta-add).
        inj.publish_metrics(self.blocks.metrics());
        self.slowdowns = inj.slowdowns();
        self.flaky = inj.flaky_nodes();
        applied
    }

    /// Current straggler multipliers (node → factor > 1.0).
    pub fn slowdowns(&self) -> &HashMap<usize, f64> {
        &self.slowdowns
    }

    /// How many RPC attempts to `node` time out before one succeeds
    /// (non-zero only for recently revived nodes).
    pub fn flaky_attempts(&self, node: usize) -> u32 {
        self.flaky.get(&node).copied().unwrap_or(0)
    }

    /// The retry-policy delay charged ahead of any step on `node`
    /// (zero for healthy nodes).
    pub fn retry_penalty(&self, node: usize) -> Nanos {
        self.config.cluster.retry.penalty(self.flaky_attempts(node))
    }

    /// Marks every node healthy for retry accounting (e.g. after a
    /// health-check sweep confirmed revived nodes).
    pub fn clear_flaky(&mut self) {
        self.flaky.clear();
    }

    /// The per-node encoded-chunk cache (counters and tests).
    pub fn chunk_cache(&self) -> &ChunkCache {
        &self.chunk_cache
    }

    /// Reads one column chunk as a parsed [`EncodedChunk`] view, serving
    /// it from the chunk cache when resident. Returns the view and
    /// whether the lookup hit. Misses populate the cache.
    ///
    /// # Errors
    ///
    /// Unknown object/chunk, unrecoverable loss, or chunk corruption.
    pub fn encoded_chunk(
        &self,
        name: &str,
        ordinal: usize,
        ty: fusion_format::schema::LogicalType,
    ) -> Result<(std::sync::Arc<fusion_format::chunk::EncodedChunk>, bool)> {
        if let Some(chunk) = self.chunk_cache.get(name, ordinal) {
            return Ok((chunk, true));
        }
        let bytes = self.chunk_bytes(name, ordinal)?;
        let chunk = std::sync::Arc::new(fusion_format::chunk::read_encoded_chunk(&bytes, ty)?);
        // Race-safe publish: if another worker populated this ordinal
        // between our miss and here, adopt its view so concurrent misses
        // converge on one Arc instead of churning the LRU.
        let chunk = self.chunk_cache.insert_or_get(name, ordinal, chunk);
        Ok((chunk, false))
    }

    /// Reads the full raw bytes of one column chunk (reassembling
    /// fragments if the layout split it; degraded reads supported).
    ///
    /// # Errors
    ///
    /// Unknown object/chunk, or unrecoverable loss.
    pub fn chunk_bytes(&self, name: &str, ordinal: usize) -> Result<Vec<u8>> {
        let meta = self.object(name)?;
        let frags = meta.chunk_fragments(ordinal);
        if frags.is_empty() {
            return Err(StoreError::Internal(format!(
                "no such chunk ordinal {ordinal}"
            )));
        }
        let start = frags[0].object_offset;
        let len: u64 = frags.iter().map(|f| f.len).sum();
        self.get(name, start, len)
    }

    /// Query-mode accessor used by the executors.
    pub fn query_mode(&self) -> QueryMode {
        self.config.query_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_format::prelude::*;

    fn analytics_bytes(rows: usize, per_group: usize) -> Vec<u8> {
        let schema = Schema::new(vec![
            Field::new("id", LogicalType::Int64),
            Field::new("flag", LogicalType::Utf8),
        ]);
        let table = Table::new(
            schema,
            vec![
                ColumnData::Int64((0..rows as i64).collect()),
                ColumnData::Utf8((0..rows).map(|i| ["N", "O", "F"][i % 3].into()).collect()),
            ],
        )
        .unwrap();
        write_table(
            &table,
            WriteOptions {
                rows_per_group: per_group,
            },
        )
        .unwrap()
    }

    #[test]
    fn put_get_roundtrip_fusion() {
        let bytes = analytics_bytes(5000, 250);
        // Small files have few chunks; loosen the overhead budget so FAC
        // does not fall back (the 2% default targets 100+ chunks).
        let mut cfg = StoreConfig::fusion();
        cfg.overhead_threshold = 0.5;
        let mut store = Store::new(cfg).unwrap();
        let report = store.put("obj", bytes.clone()).unwrap();
        assert_eq!(report.policy_used, "fac");
        assert_eq!(report.chunks, 40); // 20 row groups x 2 cols
        assert!(report.overhead_vs_optimal <= store.config().overhead_threshold + 1e-9);
        let meta = store.object("obj").unwrap();
        for c in 0..meta.num_chunks() {
            assert_eq!(
                meta.chunk_fragments(c).len(),
                1,
                "FAC must not split chunk {c}"
            );
        }
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
        // Ranged read.
        assert_eq!(
            store.get("obj", 100, 500).unwrap(),
            bytes[100..600].to_vec()
        );
    }

    #[test]
    fn put_get_roundtrip_baseline() {
        let bytes = analytics_bytes(3000, 1000);
        let mut store = Store::new(StoreConfig::baseline().with_block_size(4096)).unwrap();
        let report = store.put("obj", bytes.clone()).unwrap();
        assert_eq!(report.policy_used, "fixed");
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
    }

    #[test]
    fn blob_objects_use_fixed() {
        let blob: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut store = Store::new(StoreConfig::fusion().with_block_size(1 << 12)).unwrap();
        let report = store.put("blob", blob.clone()).unwrap();
        assert_eq!(report.policy_used, "fixed");
        assert_eq!(report.chunks, 0);
        assert_eq!(store.get("blob", 0, blob.len() as u64).unwrap(), blob);
    }

    #[test]
    fn duplicate_put_rejected() {
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("x", analytics_bytes(100, 50)).unwrap();
        assert!(matches!(
            store.put("x", vec![1, 2, 3]),
            Err(StoreError::ObjectExists(_))
        ));
    }

    #[test]
    fn out_of_range_get() {
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        let bytes = analytics_bytes(100, 50);
        let size = bytes.len() as u64;
        store.put("x", bytes).unwrap();
        assert!(matches!(
            store.get("x", size - 1, 2),
            Err(StoreError::OutOfRange { .. })
        ));
        assert!(store.get("missing", 0, 1).is_err());
    }

    #[test]
    fn degraded_read_after_failures() {
        let bytes = analytics_bytes(4000, 800);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes.clone()).unwrap();
        // RS(9,6) tolerates 3 failures.
        store.fail_node(0).unwrap();
        store.fail_node(4).unwrap();
        store.fail_node(8).unwrap();
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
    }

    #[test]
    fn too_many_failures_unrecoverable() {
        let bytes = analytics_bytes(2000, 500);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes.clone()).unwrap();
        // Fail the node holding the first data block, then three more:
        // its stripe now has only five of the six survivors RS(9,6)
        // needs, so the read must fail rather than return wrong data.
        let first_data_node = store.object("obj").unwrap().node_of(0, 0);
        store.fail_node(first_data_node).unwrap();
        let mut failed = 1;
        for n in 0..9 {
            if failed == 4 {
                break;
            }
            if n != first_data_node {
                store.fail_node(n).unwrap();
                failed += 1;
            }
        }
        let r = store.get("obj", 0, bytes.len() as u64);
        assert!(r.is_err(), "read should fail with 4 of 9 nodes lost");
    }

    #[test]
    fn degraded_read_touches_exactly_k_shards() {
        let bytes = analytics_bytes(2000, 500);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes.clone()).unwrap();
        // Fail the node holding the first data block, so a 1-byte read
        // at offset 0 must reconstruct.
        let dead = store.object("obj").unwrap().node_of(0, 0);
        store.fail_node(dead).unwrap();
        let before = store.blocks().reads();
        assert_eq!(store.get("obj", 0, 1).unwrap(), bytes[..1].to_vec());
        let read = store.blocks().reads() - before;
        assert_eq!(
            read,
            store.config().ec.k as u64,
            "degraded read must touch exactly k surviving shards"
        );
    }

    #[test]
    fn shard_selection_prefers_data_shards() {
        let bytes = analytics_bytes(2000, 500);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes).unwrap();
        let (k, n) = (store.config().ec.k, store.config().ec.n);
        // Repairing data shard 1 pulls the other data shards plus
        // exactly one parity shard (RS prefers the systematic part).
        let sp = store.object("obj").unwrap().placement[0].clone();
        let picked = store.surviving_repair_shards(&sp, 1).unwrap();
        assert_eq!(picked.len(), k);
        assert!(!picked.contains(&1));
        assert_eq!(picked.iter().filter(|&&i| i >= k).count(), 1);
        // Actually losing that node leaves the plan unchanged.
        store.fail_node(sp.nodes[1]).unwrap();
        assert_eq!(store.surviving_repair_shards(&sp, 1).unwrap(), picked);
        let _ = n;
    }

    #[test]
    fn fail_revive_recover_roundtrip() {
        let bytes = analytics_bytes(4000, 800);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes.clone()).unwrap();
        let node = store.object("obj").unwrap().placement[0].nodes[0];
        let held = store.blocks().blocks_on(node).len();
        assert!(held > 0);
        store.fail_node(node).unwrap();
        // Crash-stop: the blocks are gone, and recovery must both report
        // the loss and rebuild every one of them.
        let report = store.recover_node(node).unwrap();
        assert_eq!(report.blocks_lost, held);
        assert!(report.stripes_repaired > 0);
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
        // A second recovery has nothing left to report.
        let again = store.recover_node(node).unwrap();
        assert_eq!(again.blocks_lost, 0);
        assert_eq!(again.stripes_repaired, 0);
    }

    #[test]
    fn recovery_restores_blocks() {
        let bytes = analytics_bytes(4000, 800);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes.clone()).unwrap();
        let before = store.stored_bytes();
        store.fail_node(2).unwrap();
        assert!(store.stored_bytes() < before);
        let report = store.recover_node(2).unwrap();
        assert!(report.bytes_restored > 0);
        // All healthy reads again, without degraded paths.
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
        // Every stripe is fully present again.
        let meta = store.object("obj").unwrap();
        for sp in &meta.placement {
            for (&n, &b) in sp.nodes.iter().zip(&sp.block_ids) {
                assert!(
                    store.blocks().get(n, b).is_ok(),
                    "block {b} missing after recovery"
                );
            }
        }
    }

    #[test]
    fn chunk_bytes_match_source() {
        let bytes = analytics_bytes(3000, 600);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes.clone()).unwrap();
        let meta = store.object("obj").unwrap();
        let fm = meta.file_meta.clone().unwrap();
        for (rg, col, cm) in fm.chunks() {
            let ordinal = meta.chunk_ordinal(rg, col).unwrap();
            let got = store.chunk_bytes("obj", ordinal).unwrap();
            assert_eq!(
                got,
                bytes[cm.offset as usize..(cm.offset + cm.len) as usize].to_vec(),
                "chunk ({rg},{col})"
            );
        }
    }

    #[test]
    fn location_map_replicated() {
        let bytes = analytics_bytes(1000, 250);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes).unwrap();
        let (map, nodes) = store.location_map("obj").unwrap();
        assert_eq!(map.entries.len(), store.object("obj").unwrap().num_chunks());
        assert_eq!(nodes.len(), store.config().ec.k + 1);
        // Map points at the true hosting nodes.
        let meta = store.object("obj").unwrap();
        for (c, e) in map.entries.iter().enumerate() {
            assert_eq!(e.node as usize, meta.chunk_fragments(c)[0].node);
        }
    }

    #[test]
    fn deterministic_put_get_roundtrip_with_compact_record() {
        let bytes = analytics_bytes(4000, 500);
        let mut cfg = StoreConfig::fusion().with_placement(PlacementPolicy::Deterministic);
        cfg.overhead_threshold = 0.5;
        let mut store = Store::new(cfg).unwrap();
        store.put("obj", bytes.clone()).unwrap();
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
        // The record is compact, and materializing it reproduces the
        // paper-format oracle map bit for bit.
        let Some(ObjectMetaRecord::Compact(rec)) = store.meta_record("obj") else {
            panic!("deterministic policy must produce a compact record");
        };
        let meta = store.object("obj").unwrap();
        let oracle = LocationMap::build(meta).unwrap();
        assert!(rec.byte_size() <= oracle.byte_size() + LayoutRecord::HEADER_BYTES);
        let (map, nodes) = store.location_map("obj").unwrap();
        assert_eq!(map, oracle);
        assert_eq!(nodes.len(), store.config().ec.k + 1);
        // Reading the replicated record back off the data plane and
        // validating it yields the same map.
        assert_eq!(store.read_location_map("obj").unwrap(), oracle);
        // The hot-path lookup agrees with the oracle for every chunk.
        let chunks = store.object("obj").unwrap().num_chunks();
        for c in 0..chunks {
            assert_eq!(store.chunk_node("obj", c), map.node_of(c));
        }
        assert_eq!(store.chunk_node("obj", chunks), None);
        assert_eq!(
            store.metrics().counter("meta_lookups").get(),
            chunks as u64 + 1
        );
        assert_eq!(store.metrics().counter("meta_lookup_misses").get(), 1);
        assert_eq!(
            store.metrics().histogram("meta_lookup_ns").count(),
            chunks as u64 + 1
        );
    }

    #[test]
    fn deterministic_layouts_are_stable_across_stores() {
        // Two independently built stores with the same seed and
        // membership place every block identically — nothing about the
        // layout depends on construction history.
        let bytes = analytics_bytes(3000, 300);
        let build = || {
            let mut store =
                Store::new(StoreConfig::fusion().with_placement(PlacementPolicy::Deterministic))
                    .unwrap();
            store.put("a", bytes.clone()).unwrap();
            store.put("b", analytics_bytes(1000, 250)).unwrap();
            store
        };
        let (s1, s2) = (build(), build());
        for name in ["a", "b"] {
            let m1 = s1.object(name).unwrap();
            let m2 = s2.object(name).unwrap();
            for (sp1, sp2) in m1.placement.iter().zip(&m2.placement) {
                assert_eq!(sp1.nodes, sp2.nodes, "{name}");
            }
            assert_eq!(
                s1.location_map(name).unwrap(),
                s2.location_map(name).unwrap(),
                "{name}"
            );
        }
    }

    #[test]
    fn deterministic_degraded_read_and_recovery() {
        let bytes = analytics_bytes(4000, 800);
        let mut store =
            Store::new(StoreConfig::fusion().with_placement(PlacementPolicy::Deterministic))
                .unwrap();
        store.put("obj", bytes.clone()).unwrap();
        let node = store.object("obj").unwrap().placement[0].nodes[0];
        store.fail_node(node).unwrap();
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
        let report = store.recover_node(node).unwrap();
        assert!(report.stripes_repaired > 0);
        // Metadata replicas on the node were rewritten and stay readable.
        assert!(store.read_location_map("obj").is_ok());
        assert_eq!(store.get("obj", 0, bytes.len() as u64).unwrap(), bytes);
    }

    #[test]
    fn legacy_policies_untouched_by_deterministic_branch() {
        // The deterministic branch must not consume the store RNG:
        // DomainAware (and Naive) placements under the same seed must be
        // byte-identical to what they were before the policy existed —
        // guarded here by cross-checking two identically seeded stores
        // and asserting the RNG-driven placements still differ per
        // stripe (i.e. the shuffle stream advanced normally).
        let bytes = analytics_bytes(4000, 400);
        let mut a = Store::new(StoreConfig::fusion()).unwrap();
        let mut b = Store::new(StoreConfig::fusion()).unwrap();
        a.put("obj", bytes.clone()).unwrap();
        b.put("obj", bytes).unwrap();
        let ma = a.object("obj").unwrap();
        let mb = b.object("obj").unwrap();
        assert!(!ma.placement.is_empty());
        assert_eq!(ma.placement.len(), mb.placement.len());
        for (sa, sb) in ma.placement.iter().zip(&mb.placement) {
            assert_eq!(sa.nodes, sb.nodes);
        }
    }

    #[test]
    fn coordinator_is_stable_and_alive() {
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        let c1 = store.coordinator_of("some-object").unwrap();
        assert_eq!(c1, store.coordinator_of("some-object").unwrap());
        store.fail_node(c1).unwrap();
        let c2 = store.coordinator_of("some-object").unwrap();
        assert_ne!(c1, c2);
        assert!(store.blocks().is_alive(c2));
    }

    #[test]
    fn coordinator_of_dead_cluster_is_typed() {
        // A fully-dead cluster must reject coordination with a typed
        // error, never divide by zero (reachable from wire input).
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        let n = store.config().cluster.nodes;
        for i in 0..n {
            store.fail_node(i).unwrap();
        }
        match store.coordinator_of("obj") {
            Err(StoreError::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn request_boundary_is_typed() {
        let bytes = analytics_bytes(2000, 500);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        store.put("obj", bytes).unwrap();
        // Overflowing range wraps past the u64 check without checked_add.
        match store.get("obj", u64::MAX - 4, 16) {
            Err(StoreError::InvalidRequest(_)) => {}
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
        // Zero-length reads inside the object are valid no-ops.
        assert_eq!(store.get("obj", 0, 0).unwrap(), Vec::<u8>::new());
        // ... but not past the end.
        assert!(matches!(
            store.get("obj", u64::MAX, 0),
            Err(StoreError::OutOfRange { .. })
        ));
        // Empty and oversized keys are rejected before any data-plane work.
        assert!(matches!(
            store.get("", 0, 1),
            Err(StoreError::InvalidRequest(_))
        ));
        let huge = "k".repeat(MAX_KEY_BYTES + 1);
        assert!(matches!(
            store.put(&huge, vec![1, 2, 3]),
            Err(StoreError::InvalidRequest(_))
        ));
        assert!(validate_key(&"k".repeat(MAX_KEY_BYTES)).is_ok());
    }

    #[test]
    fn put_simulates_latency() {
        let bytes = analytics_bytes(2000, 500);
        let mut store = Store::new(StoreConfig::fusion()).unwrap();
        let report = store.put("obj", bytes).unwrap();
        assert!(report.simulated_latency > Nanos::ZERO);
        assert!(report.stored_bytes > 0);
        assert!(report.stripes >= 1);
    }

    #[test]
    fn stored_blocks_identical_across_codecs_and_threads() {
        use fusion_ec::codec::CodecKind;
        let bytes = analytics_bytes(4000, 400);
        let variants = [
            (CodecKind::Fast, 1),
            (CodecKind::Fast, 4),
            (CodecKind::Scalar, 1),
            (CodecKind::Scalar, 3),
        ];
        let mut fingerprints = Vec::new();
        for (codec, threads) in variants {
            let cfg = StoreConfig::fusion()
                .with_codec(codec)
                .with_ec_threads(threads);
            let mut store = Store::new(cfg).unwrap();
            store.put("obj", bytes.clone()).unwrap();
            // Same seed => same placement; every block (data AND parity)
            // must be byte-identical regardless of codec or parallelism.
            let meta = store.object("obj").unwrap();
            let mut fp: Vec<Vec<u8>> = Vec::new();
            for sp in &meta.placement {
                for (&n, &b) in sp.nodes.iter().zip(&sp.block_ids) {
                    fp.push(store.blocks().get(n, b).unwrap().to_vec());
                }
            }
            fingerprints.push(fp);
        }
        for fp in &fingerprints[1..] {
            assert_eq!(fp, &fingerprints[0]);
        }
    }

    #[test]
    fn parity_scratch_survives_repeated_puts() {
        // Several puts through the same store reuse recycled parity
        // buffers; every object must still roundtrip.
        let mut store = Store::new(StoreConfig::fusion().with_ec_threads(2)).unwrap();
        let objs: Vec<(String, Vec<u8>)> = (0..4)
            .map(|i| (format!("o{i}"), analytics_bytes(1000 + 700 * i, 250)))
            .collect();
        for (name, bytes) in &objs {
            store.put(name, bytes.clone()).unwrap();
        }
        for (name, bytes) in &objs {
            assert_eq!(&store.get(name, 0, bytes.len() as u64).unwrap(), bytes);
        }
    }

    #[test]
    fn parallel_recovery_matches_serial() {
        let bytes = analytics_bytes(4000, 500);
        for threads in [1usize, 4] {
            let mut store = Store::new(StoreConfig::fusion().with_ec_threads(threads)).unwrap();
            store.put("obj", bytes.clone()).unwrap();
            let node = store.object("obj").unwrap().placement[0].nodes[0];
            store.fail_node(node).unwrap();
            let report = store.recover_node(node).unwrap();
            assert!(report.stripes_repaired > 0, "threads={threads}");
            assert_eq!(
                store.get("obj", 0, bytes.len() as u64).unwrap(),
                bytes,
                "threads={threads}"
            );
            let meta = store.object("obj").unwrap();
            for sp in &meta.placement {
                for (&n, &b) in sp.nodes.iter().zip(&sp.block_ids) {
                    assert!(store.blocks().get(n, b).is_ok(), "threads={threads}");
                }
            }
        }
    }
}
