//! Per-node encoded-chunk cache.
//!
//! Storage nodes that repeatedly serve filter pushdown over the same
//! chunks should not re-read and re-parse them on every query (the paper's
//! nodes scan chunks in situ; OASIS-style offloading engines keep exactly
//! this working set hot). The cache holds [`EncodedChunk`] views — decoded
//! dictionary plus run structure, cheap to hold and immediately scannable
//! by the encoded-domain kernels — keyed by `(object, chunk ordinal)`,
//! evicting least-recently-used entries once the configured byte capacity
//! is exceeded.
//!
//! Queries run on `&Store`, so the cache uses interior mutability; all
//! state sits behind one mutex, locked only for the brief lookup/insert
//! bookkeeping (never across a parse or a scan). Entries are `Arc`s, so a
//! hit shares the view with the scan fan-out without copying.
//!
//! Invalidation: anything that rewrites or loses blocks drops the affected
//! entries — delete and scrub-heal invalidate per object; node failure,
//! recovery, and injected faults clear the cache wholesale (the data any
//! node cached may no longer match what the data plane would serve).

use fusion_format::chunk::EncodedChunk;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cumulative cache counters (monotonic over the store's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: usize,
}

#[derive(Debug)]
struct Entry {
    chunk: Arc<EncodedChunk>,
    weight: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<(String, usize), Entry>,
    tick: u64,
    resident: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Byte-capacity LRU of parsed chunk views. See the module docs.
#[derive(Debug)]
pub struct ChunkCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ChunkCache {
    /// Creates a cache holding at most `capacity` bytes (0 disables).
    pub fn new(capacity: usize) -> ChunkCache {
        ChunkCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Configured byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a chunk view, counting a hit or miss and refreshing
    /// recency on hit.
    pub fn get(&self, object: &str, ordinal: usize) -> Option<Arc<EncodedChunk>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        // Borrow-split: key lookup needs a owned-ish key; build once.
        match inner.entries.get_mut(&(object.to_string(), ordinal)) {
            Some(e) => {
                e.last_used = tick;
                let chunk = e.chunk.clone();
                inner.hits += 1;
                Some(chunk)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a chunk view, evicting LRU entries until the
    /// capacity holds. Degenerate inserts — a disabled cache
    /// (`capacity == 0`) or a view heavier than the whole capacity — are
    /// rejected up front so they can never underflow `resident` or leave
    /// the eviction loop spinning on an empty map.
    pub fn insert(&self, object: &str, ordinal: usize, chunk: Arc<EncodedChunk>) {
        self.insert_or_get(object, ordinal, chunk);
    }

    /// Race-safe miss-path insert: publishes `chunk` under the key
    /// **unless another thread got there first**, in which case the
    /// already-resident view is promoted and returned and `chunk` is
    /// dropped. The read-back and the publish are one critical section,
    /// so two threads that both missed on the same chunk converge on a
    /// single shared view instead of the second insert evicting (and
    /// re-accounting) the first — the get/insert promotion race that a
    /// naive `get` + `insert` pair has under real concurrency.
    ///
    /// Counter discipline: this path counts neither a hit nor a miss (the
    /// preceding [`ChunkCache::get`] already counted the miss), so
    /// `hits + misses` equals lookups exactly, no matter how the race
    /// lands.
    pub fn insert_or_get(
        &self,
        object: &str,
        ordinal: usize,
        chunk: Arc<EncodedChunk>,
    ) -> Arc<EncodedChunk> {
        let weight = chunk.weight_bytes();
        if self.capacity == 0 || weight > self.capacity {
            return chunk;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let key = (object.to_string(), ordinal);
        if let Some(existing) = inner.entries.get_mut(&key) {
            // Lost the race (or a refresh of a live entry): keep the
            // resident view and its accounting, refresh recency only.
            existing.last_used = tick;
            return existing.chunk.clone();
        }
        inner.entries.insert(
            key,
            Entry {
                chunk: chunk.clone(),
                weight,
                last_used: tick,
            },
        );
        inner.resident += weight;
        while inner.resident > self.capacity {
            // Linear LRU scan: entry counts are modest (chunks, not rows),
            // and eviction is off the scan hot path.
            let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                // Accounting drift (resident > 0 with no entries) must
                // degrade to a reset, not a panic on the query path.
                debug_assert!(false, "resident > 0 with no entries");
                inner.resident = 0;
                break;
            };
            let evicted = inner.entries.remove(&victim).expect("victim present");
            inner.resident = inner.resident.saturating_sub(evicted.weight);
            inner.evictions += 1;
        }
        chunk
    }

    /// Drops every entry of one object (delete, scrub heal, re-put).
    pub fn invalidate_object(&self, object: &str) {
        let mut inner = self.inner.lock().expect("cache lock");
        let removed: Vec<(String, usize)> = inner
            .entries
            .keys()
            .filter(|(o, _)| o == object)
            .cloned()
            .collect();
        for k in removed {
            let e = inner.entries.remove(&k).expect("key present");
            inner.resident -= e.weight;
        }
    }

    /// Drops everything (node failure/recovery, injected faults).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.entries.clear();
        inner.resident = 0;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.resident as u64,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_format::value::ColumnData;

    fn chunk(n: usize) -> Arc<EncodedChunk> {
        Arc::new(EncodedChunk::Plain(ColumnData::Int64(
            (0..n as i64).collect(),
        )))
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = ChunkCache::new(1 << 20);
        assert!(c.get("o", 0).is_none());
        c.insert("o", 0, chunk(10));
        let got = c.get("o", 0).expect("hit");
        assert_eq!(got.rows(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.resident_bytes, 80);
    }

    #[test]
    fn lru_eviction_by_bytes() {
        // Each 10-row Int64 chunk weighs 80 bytes; capacity fits two.
        let c = ChunkCache::new(170);
        c.insert("o", 0, chunk(10));
        c.insert("o", 1, chunk(10));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(c.get("o", 0).is_some());
        c.insert("o", 2, chunk(10));
        assert!(c.get("o", 1).is_none(), "LRU entry evicted");
        assert!(c.get("o", 0).is_some());
        assert!(c.get("o", 2).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn oversized_and_disabled() {
        let c = ChunkCache::new(8);
        c.insert("o", 0, chunk(10)); // 80 bytes > capacity: not cached
        assert!(c.get("o", 0).is_none());
        let off = ChunkCache::new(0);
        off.insert("o", 0, chunk(1));
        assert!(off.get("o", 0).is_none());
        // Disabled cache counts nothing.
        assert_eq!(off.stats().misses, 0);
    }

    #[test]
    fn zero_capacity_inserts_never_underflow() {
        // Regression: a disabled cache must absorb any insert pattern
        // without touching `resident` (underflow) or evicting.
        let off = ChunkCache::new(0);
        for i in 0..10 {
            off.insert("o", i, chunk(100));
            off.insert("o", i, chunk(1)); // re-insert, lighter
        }
        let s = off.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn oversized_insert_leaves_residents_intact() {
        // Regression: an entry heavier than the whole capacity must be
        // rejected without evicting what is already cached or tripping
        // the eviction loop.
        let c = ChunkCache::new(100);
        c.insert("o", 0, chunk(10)); // 80 bytes, fits
        c.insert("o", 1, chunk(1_000)); // 8000 bytes > capacity: rejected
        assert!(c.get("o", 0).is_some(), "resident entry survives");
        assert!(c.get("o", 1).is_none());
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.resident_bytes, 80);
        assert_eq!(s.evictions, 0);
        // Re-inserting the resident key with an oversized view keeps the
        // old view rather than corrupting the accounting.
        c.insert("o", 0, chunk(1_000));
        assert_eq!(c.stats().resident_bytes, 80);
        assert_eq!(c.get("o", 0).expect("still cached").rows(), 10);
    }

    #[test]
    fn exact_capacity_insert_is_cached() {
        // Boundary: weight == capacity is allowed and fully occupies the
        // cache; the next insert evicts it.
        let c = ChunkCache::new(80);
        c.insert("o", 0, chunk(10));
        assert!(c.get("o", 0).is_some());
        c.insert("o", 1, chunk(10));
        assert!(c.get("o", 1).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().resident_bytes, 80);
    }

    #[test]
    fn invalidation() {
        let c = ChunkCache::new(1 << 20);
        c.insert("a", 0, chunk(10));
        c.insert("a", 1, chunk(10));
        c.insert("b", 0, chunk(10));
        c.invalidate_object("a");
        assert!(c.get("a", 0).is_none());
        assert!(c.get("a", 1).is_none());
        assert!(c.get("b", 0).is_some());
        assert_eq!(c.stats().resident_bytes, 80);
        c.clear();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().resident_bytes, 0);
    }

    #[test]
    fn reinsert_keeps_resident_view() {
        // Chunk views are immutable for a given (object, ordinal) — re-put
        // is rejected upstream and heals invalidate first — so a racing
        // second insert must converge on the first view instead of
        // replacing it (which would churn accounting and drop sharing).
        let c = ChunkCache::new(1 << 20);
        let first = chunk(10);
        c.insert("o", 0, first.clone());
        let got = c.insert_or_get("o", 0, chunk(20));
        assert!(Arc::ptr_eq(&got, &first), "loser adopts the winner's view");
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.resident_bytes, 80);
    }

    #[test]
    fn racing_threads_converge_without_evictions() {
        // Regression for the get/insert promotion race: many threads all
        // miss on the same chunk and publish concurrently. Exactly one
        // view must win, nobody may evict anybody, counters must satisfy
        // hits + misses == lookups, and resident accounting must be exact.
        use std::sync::Barrier;
        let c = Arc::new(ChunkCache::new(1 << 20));
        let threads = 8;
        let rounds = 50;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..rounds {
                        let view = match c.get("o", i) {
                            Some(v) => v,
                            None => c.insert_or_get("o", i, chunk(10)),
                        };
                        assert_eq!(view.rows(), 10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics under the race");
        }
        let s = c.stats();
        assert_eq!(s.entries, rounds);
        assert_eq!(s.resident_bytes, 80 * rounds as u64);
        assert_eq!(s.evictions, 0, "convergence never evicts");
        assert_eq!(
            s.hits + s.misses,
            (threads * rounds) as u64,
            "every lookup counted exactly once"
        );
        // At least one miss per distinct chunk (the first thread there).
        assert!(s.misses >= rounds as u64);
    }
}
