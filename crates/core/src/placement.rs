//! Deterministic, topology-aware shard placement (DESIGN.md §16).
//!
//! Instead of remembering where every chunk went, the store can *compute*
//! it: each `(object, stripe, shard)` slot scores every cluster member
//! with a seeded rendezvous (highest-random-weight) hash and takes the
//! best-scoring node that satisfies the failure-domain constraints PR 6
//! property-tested — at most `tolerance` shards of a stripe per domain,
//! at most one shard of a local parity group per domain. The result is a
//! pure function of `(seed, object key, stripe, shard, membership,
//! topology)`:
//!
//! * **byte-stable** — re-evaluating with the same inputs always yields
//!   the same layout, so nothing needs to be stored per chunk;
//! * **minimally disruptive** — adding a node to an `m`-node cluster
//!   changes a slot's winner only when the new node out-scores the old
//!   one, i.e. with probability `1/(m+1)`, so rebalance moves ~1/n of
//!   chunks (the CRUSH/rendezvous property);
//! * **constraint-respecting** — the greedy pick mirrors the stored-map
//!   policy's invariants, degenerating to "distinct nodes" on a flat
//!   topology.
//!
//! Scores are compared as `(score, !node)` so ties (vanishingly rare with
//! 64-bit scores, but possible) break toward the lower node id and the
//! outcome is independent of member ordering.

use fusion_cluster::topology::Topology;
use fusion_ec::stripe::StripeCodec;

/// The stripe-placement "slot" index used for location-record replicas,
/// chosen so replica scores never collide with a data stripe's stream.
const REPLICA_STRIPE: u64 = u64::MAX;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The rendezvous score of `node` for slot `(okey, stripe, shard)` under
/// `seed`. Chained mixes keep every input byte influencing every output
/// bit; the per-node cost is five multiplies.
#[inline]
pub fn shard_score(seed: u64, okey: u64, stripe: u64, shard: u64, node: u64) -> u64 {
    mix64(seed ^ mix64(okey ^ mix64(stripe ^ mix64(shard ^ mix64(node)))))
}

/// A 128-bit object identity: the index key of the sharded namespace
/// and the source of the 64-bit placement key. Derived from
/// `(bucket, name)` by two independent FNV-1a streams so distinct
/// objects collide with probability ~2⁻¹²⁸.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u128);

impl ObjectId {
    /// The 64-bit key that seeds every placement decision for this
    /// object. Folding the two id halves through the mixer keeps the
    /// placement stream independent of either FNV stream alone.
    #[inline]
    pub fn placement_key(self) -> u64 {
        mix64(self.0 as u64 ^ mix64((self.0 >> 64) as u64))
    }
}

/// Hashes `bucket/name` into an [`ObjectId`].
pub fn object_id(bucket: &str, name: &str) -> ObjectId {
    let mut lo = 0xcbf2_9ce4_8422_2325u64;
    let mut hi = 0x6c62_272e_07bb_0142u64; // a second, independent basis
    for b in bucket
        .bytes()
        .chain(std::iter::once(b'/'))
        .chain(name.bytes())
    {
        lo ^= u64::from(b);
        lo = lo.wrapping_mul(0x100_0000_01b3);
        hi = hi.wrapping_mul(0x100_0000_01b3);
        hi ^= u64::from(b);
    }
    ObjectId(u128::from(hi) << 64 | u128::from(lo))
}

/// The 64-bit placement key of `bucket/name` — shorthand for
/// [`object_id`]`.placement_key()`.
pub fn object_key(bucket: &str, name: &str) -> u64 {
    object_id(bucket, name).placement_key()
}

/// The part of a [`StripeCodec`] placement cares about, captured by value
/// so pure placement functions need no codec instance on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeShape {
    /// Shards per stripe.
    pub n: usize,
    /// Data shards per stripe (the chunk→stripe fold uses this).
    pub k: usize,
    /// Guaranteed simultaneous-loss tolerance of the code.
    pub tolerance: usize,
    /// Local parity group of each shard (`None` for global shards).
    pub group_of: Vec<Option<usize>>,
}

impl StripeShape {
    /// Captures the placement-relevant shape of a codec.
    pub fn from_codec(code: &dyn StripeCodec) -> StripeShape {
        let n = code.total_blocks();
        StripeShape {
            n,
            k: code.data_blocks(),
            tolerance: code.tolerance(),
            group_of: (0..n).map(|s| code.placement_group(s)).collect(),
        }
    }

    /// Number of local parity groups (0 for plain RS).
    pub fn groups(&self) -> usize {
        self.group_of
            .iter()
            .filter_map(|g| *g)
            .max()
            .map_or(0, |g| g + 1)
    }
}

/// Deterministically places one stripe's `shape.n` shards onto distinct
/// members, respecting the PR-6 domain invariants where satisfiable:
/// no failure domain receives more than `shape.tolerance` shards, and no
/// domain receives two shards of the same local group. When a constraint
/// cannot be met (fewer domains than the code wants), it is relaxed for
/// that shard exactly as the stored-map policy relaxes — distinct nodes
/// are never given up.
///
/// The returned layout depends only on the arguments (never on member
/// ordering or any RNG), which is what makes it safe to *not* store.
///
/// # Panics
///
/// Panics if `members` has fewer than `shape.n` nodes or contains a node
/// outside `topo`.
pub fn place_stripe(
    seed: u64,
    okey: u64,
    stripe: u64,
    shape: &StripeShape,
    members: &[usize],
    topo: &Topology,
) -> Vec<usize> {
    place_slots(
        seed,
        okey,
        stripe,
        shape.n,
        members,
        topo,
        |per_domain, group_used, shard, d| {
            if per_domain[d] >= shape.tolerance.max(1) {
                return false;
            }
            match shape.group_of[shard] {
                Some(g) => !group_used[g * topo.domains() + d],
                None => true,
            }
        },
        |group_used, shard, d| {
            if let Some(g) = shape.group_of[shard] {
                group_used[g * topo.domains() + d] = true;
            }
        },
        shape.groups(),
    )
}

/// Deterministically places `count` metadata replicas on distinct
/// members, spreading across failure domains: a domain only receives a
/// second replica once every domain with capacity holds one (the same
/// least-loaded-domain discipline as the stored-map path, made
/// order-free by rendezvous ranking).
///
/// # Panics
///
/// Panics if `members` has fewer than `count` nodes.
pub fn place_replicas(
    seed: u64,
    okey: u64,
    count: usize,
    members: &[usize],
    topo: &Topology,
) -> Vec<usize> {
    place_slots(
        seed,
        okey,
        REPLICA_STRIPE,
        count,
        members,
        topo,
        |per_domain, _, slot, d| {
            // Allow a domain its (q+1)-th replica only after q full
            // rounds over the domains: cap grows one per exhausted round.
            per_domain[d] <= slot / topo.domains()
        },
        |_, _, _| {},
        0,
    )
}

/// Shared greedy core: for each slot, take the feasible unused member
/// with the best `(score, lowest node)` rank, falling back to the best
/// unused member when no candidate satisfies `feasible` (constraint
/// relaxation — distinct nodes are never relaxed).
#[allow(clippy::too_many_arguments)]
fn place_slots(
    seed: u64,
    okey: u64,
    stripe: u64,
    slots: usize,
    members: &[usize],
    topo: &Topology,
    feasible: impl Fn(&[usize], &[bool], usize, usize) -> bool,
    mark: impl Fn(&mut [bool], usize, usize),
    groups: usize,
) -> Vec<usize> {
    assert!(
        members.len() >= slots,
        "placement needs {} members, have {}",
        slots,
        members.len()
    );
    let mut used = vec![false; members.len()];
    let mut per_domain = vec![0usize; topo.domains()];
    let mut group_used = vec![false; groups * topo.domains()];
    let mut placed = Vec::with_capacity(slots);
    for slot in 0..slots {
        let mut best_ok: Option<(u64, usize)> = None; // (score, member idx)
        let mut best_any: Option<(u64, usize)> = None;
        for (i, &node) in members.iter().enumerate() {
            if used[i] {
                continue;
            }
            let s = shard_score(seed, okey, stripe, slot as u64, node as u64);
            let beats = |cur: Option<(u64, usize)>| match cur {
                None => true,
                Some((cs, ci)) => s > cs || (s == cs && node < members[ci]),
            };
            if beats(best_any) {
                best_any = Some((s, i));
            }
            if feasible(&per_domain, &group_used, slot, topo.domain_of(node)) && beats(best_ok) {
                best_ok = Some((s, i));
            }
        }
        let (_, i) = best_ok.or(best_any).expect("enough members");
        used[i] = true;
        let node = members[i];
        let d = topo.domain_of(node);
        per_domain[d] += 1;
        mark(&mut group_used, slot, d);
        placed.push(node);
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcConfig;
    use fusion_ec::codec::CodecKind;

    fn rs96_shape() -> StripeShape {
        StripeShape::from_codec(&*EcConfig::RS_9_6.build_codec(CodecKind::Scalar).unwrap())
    }

    fn lrc_shape() -> StripeShape {
        StripeShape::from_codec(&*EcConfig::LRC_10_6.build_codec(CodecKind::Scalar).unwrap())
    }

    #[test]
    fn re_evaluation_is_byte_stable() {
        let shape = rs96_shape();
        let topo = Topology::racks(18, 6);
        let members: Vec<usize> = (0..18).collect();
        for okey in [0u64, 1, 0xdead_beef] {
            for stripe in 0..4 {
                let a = place_stripe(7, okey, stripe, &shape, &members, &topo);
                let b = place_stripe(7, okey, stripe, &shape, &members, &topo);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn nodes_are_distinct_and_in_members() {
        let shape = rs96_shape();
        let topo = Topology::racks(20, 5);
        let members: Vec<usize> = (0..20).filter(|n| n % 4 != 3).collect(); // 15 members
        let placed = place_stripe(1, 42, 0, &shape, &members, &topo);
        assert_eq!(placed.len(), 9);
        let mut uniq = placed.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 9);
        assert!(placed.iter().all(|n| members.contains(n)));
    }

    #[test]
    fn domain_constraints_hold_when_satisfiable() {
        let shape = lrc_shape();
        let topo = Topology::racks(20, 5);
        let members: Vec<usize> = (0..20).collect();
        for okey in 0..50u64 {
            let placed = place_stripe(3, okey, 0, &shape, &members, &topo);
            let mut per_domain = vec![0usize; topo.domains()];
            let mut group_domain = std::collections::HashSet::new();
            for (shard, &node) in placed.iter().enumerate() {
                let d = topo.domain_of(node);
                per_domain[d] += 1;
                if let Some(g) = shape.group_of[shard] {
                    assert!(
                        group_domain.insert((g, d)),
                        "group {g} twice in domain {d} (okey {okey})"
                    );
                }
            }
            assert!(per_domain.iter().all(|&c| c <= shape.tolerance));
        }
    }

    #[test]
    fn member_order_is_irrelevant() {
        let shape = rs96_shape();
        let topo = Topology::racks(16, 4);
        let fwd: Vec<usize> = (0..16).collect();
        let rev: Vec<usize> = (0..16).rev().collect();
        for okey in 0..20u64 {
            assert_eq!(
                place_stripe(9, okey, 1, &shape, &fwd, &topo),
                place_stripe(9, okey, 1, &shape, &rev, &topo)
            );
        }
    }

    #[test]
    fn node_add_moves_about_one_over_n() {
        let shape = rs96_shape();
        let topo = Topology::racks(32, 8);
        let grown = topo.with_added_node(0);
        let members: Vec<usize> = (0..32).collect();
        let mut grown_members = members.clone();
        grown_members.push(32);
        let (mut moved, mut total) = (0usize, 0usize);
        for okey in 0..500u64 {
            let old = place_stripe(5, okey, 0, &shape, &members, &topo);
            let new = place_stripe(5, okey, 0, &shape, &grown_members, &grown);
            for (a, b) in old.iter().zip(&new) {
                total += 1;
                moved += usize::from(a != b);
            }
        }
        let frac = moved as f64 / total as f64;
        // Expected ~1/33 per slot; constraints add a little churn.
        assert!(
            frac > 0.01 && frac < 0.10,
            "moved fraction {frac} outside rendezvous bounds"
        );
    }

    #[test]
    fn replicas_spread_across_domains() {
        let topo = Topology::racks(12, 4);
        let members: Vec<usize> = (0..12).collect();
        for okey in 0..30u64 {
            let placed = place_replicas(11, okey, 4, &members, &topo);
            assert_eq!(placed.len(), 4);
            let domains: std::collections::HashSet<_> =
                placed.iter().map(|&n| topo.domain_of(n)).collect();
            assert_eq!(
                domains.len(),
                4,
                "4 replicas over 4 racks must use all racks"
            );
        }
        // More replicas than domains: second round allowed.
        let placed = place_replicas(11, 1, 7, &members, &topo);
        let mut per_domain = [0usize; 4];
        for &n in &placed {
            per_domain[topo.domain_of(n)] += 1;
        }
        assert!(per_domain.iter().all(|&c| c == 1 || c == 2));
    }

    #[test]
    fn object_key_mixes() {
        assert_ne!(object_key("b", "a"), object_key("a", "b"));
        assert_ne!(object_key("", "ab"), object_key("a", "b"));
        assert_eq!(object_key("t", "x"), object_key("t", "x"));
    }
}
