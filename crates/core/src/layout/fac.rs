//! FAC stripe construction — Algorithm 1 of the paper.
//!
//! One stripe at a time: pop the largest unassigned chunk into bin 0,
//! sealing the stripe's capacity `C` at that chunk's size (no other bin may
//! grow past the largest — so the stripe's parity size is already fixed).
//! Then scan the remaining chunks in descending size order, placing each
//! chunk that fits into the **least occupied** of bins 1..k−1. The scan
//! both pulls large chunks out of future stripes (where they would become
//! expensive bin-0 maxima) and back-fills gaps with small chunks.
//!
//! Runs in `O(m · N · k)`; the paper measures 10s–100s of microseconds for
//! real files — a ~0.002% overhead on Put (Figure 16c).

use super::{Bin, Layout, PackItem, Piece, Stripe};

/// Packs `items` into stripes of `k` variable-sized bins such that no item
/// is ever split.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn pack(k: usize, items: &[PackItem]) -> Layout {
    assert!(k > 0, "k must be positive");
    // Sort indices by size descending (stable for determinism).
    let mut order: Vec<usize> = (0..items.len()).filter(|&i| !items[i].is_empty()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .len()
            .cmp(&items[a].len())
            .then_with(|| items[a].start.cmp(&items[b].start))
    });

    let mut assigned = vec![false; items.len()];
    let mut stripes = Vec::new();
    let mut remaining = order.len();

    while remaining > 0 {
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut loads = vec![0u64; k];

        // Pop the largest unassigned item into bin 0; its size is the
        // stripe capacity C.
        let first = order
            .iter()
            .copied()
            .find(|&i| !assigned[i])
            .expect("remaining > 0");
        assigned[first] = true;
        remaining -= 1;
        bins[0].push(first);
        loads[0] = items[first].len();
        let capacity = loads[0];

        // One scan over the queue in descending order.
        for &i in &order {
            if assigned[i] {
                continue;
            }
            let size = items[i].len();
            // Least occupied bin among 1..k with room.
            let mut best: Option<usize> = None;
            for b in 1..k {
                if loads[b] + size <= capacity && best.is_none_or(|x| loads[b] < loads[x]) {
                    best = Some(b);
                }
            }
            if let Some(b) = best {
                bins[b].push(i);
                loads[b] += size;
                assigned[i] = true;
                remaining -= 1;
            }
        }

        stripes.push(Stripe {
            bins: bins
                .into_iter()
                .map(|idxs| Bin {
                    pieces: idxs
                        .into_iter()
                        .map(|i| Piece {
                            start: items[i].start,
                            end: items[i].end,
                            chunk: Some(items[i].chunk),
                        })
                        .collect(),
                    physical_pad: 0,
                })
                .collect(),
        });
    }

    if stripes.is_empty() {
        stripes.push(Stripe {
            bins: vec![Bin::default(); k],
        });
    }
    Layout { stripes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcConfig;

    fn tile(sizes: &[u64]) -> Vec<PackItem> {
        let mut items = Vec::new();
        let mut pos = 0;
        for (i, &s) in sizes.iter().enumerate() {
            items.push(PackItem {
                chunk: i,
                start: pos,
                end: pos + s,
            });
            pos += s;
        }
        items
    }

    #[test]
    fn never_splits_and_covers() {
        let sizes = [500, 30, 470, 20, 10, 250, 250, 90, 410, 100, 100, 1];
        let items = tile(&sizes);
        let layout = pack(6, &items);
        layout.assert_valid(sizes.iter().sum(), 6, true);
    }

    #[test]
    fn largest_item_leads_first_stripe() {
        let items = tile(&[10, 999, 50]);
        let layout = pack(3, &items);
        let b0 = &layout.stripes[0].bins[0];
        assert_eq!(b0.pieces.len(), 1);
        assert_eq!(b0.pieces[0].chunk, Some(1));
        assert_eq!(layout.stripes[0].block_size(), 999);
    }

    #[test]
    fn capacity_never_exceeded() {
        let sizes: Vec<u64> = (1..=40).map(|i| (i * 37) % 100 + 1).collect();
        let items = tile(&sizes);
        let layout = pack(6, &items);
        for s in &layout.stripes {
            let cap = s.bins[0].data_len();
            for b in &s.bins {
                assert!(b.data_len() <= cap, "bin exceeds stripe capacity");
            }
        }
        layout.assert_valid(sizes.iter().sum(), 6, true);
    }

    #[test]
    fn equal_sizes_reach_optimal() {
        // 12 chunks of 100 into k=6: two perfect stripes, zero overhead.
        let items = tile(&[100; 12]);
        let layout = pack(6, &items);
        assert_eq!(layout.stripes.len(), 2);
        let ec = EcConfig::rs(9, 6);
        assert!(layout.overhead_vs_optimal(ec).abs() < 1e-12);
    }

    #[test]
    fn one_item_per_stripe_worst_case() {
        // A single giant chunk: one stripe, k-1 empty bins — the paper's
        // replication-equivalent worst case.
        let items = tile(&[1000]);
        let layout = pack(6, &items);
        assert_eq!(layout.stripes.len(), 1);
        let ec = EcConfig::rs(9, 6);
        // total = 1000 + 3*1000 = 4000; optimal = 1500; overhead = 5/3.
        assert!((layout.overhead_vs_optimal(ec) - (4000.0 - 1500.0) / 1500.0).abs() < 1e-9);
    }

    #[test]
    fn many_chunks_low_overhead() {
        // Realistic mix: overhead should be small with many chunks.
        let sizes: Vec<u64> = (0..600)
            .map(|i| {
                let x = (i * 2654435761u64) % 1000;
                x * x % 100_000 + 1000
            })
            .collect();
        let items = tile(&sizes);
        let layout = pack(6, &items);
        layout.assert_valid(sizes.iter().sum(), 6, true);
        let ec = EcConfig::rs(9, 6);
        let overhead = layout.overhead_vs_optimal(ec);
        assert!(
            overhead < 0.05,
            "overhead {overhead} too high for 600 chunks"
        );
    }

    #[test]
    fn empty_input() {
        let layout = pack(6, &[]);
        assert_eq!(layout.stripes.len(), 1);
        assert_eq!(layout.data_len(), 0);
    }

    #[test]
    fn big_then_small_backfills() {
        // 6 chunks: one 100, five 20s; k=3. Stripe 1: bin0=100,
        // bins 1-2 get the 20s (fills 40+40 or similar), remaining 20 in
        // stripe 2 if it doesn't fit.
        let items = tile(&[100, 20, 20, 20, 20, 20]);
        let layout = pack(3, &items);
        layout.assert_valid(200, 3, true);
        // All five 20s fit under capacity 100 across two bins.
        assert_eq!(layout.stripes.len(), 1);
    }
}
