//! Format-oblivious fixed-size blocks — the layout used by production
//! systems like MinIO and Ceph, and the baseline everywhere in the paper.
//!
//! The object is treated as a blob of bytes and cut every `block_size`
//! bytes; `k` consecutive blocks form a stripe. Column chunks that cross a
//! cut point end up **split across storage nodes**, which is the paper's
//! core motivating observation (Figures 4a, 5 and 12).

use super::{Bin, Layout, PackItem, Piece, Stripe};

/// Packs `object_len` bytes into fixed `block_size` blocks.
///
/// `items` (may be empty for non-analytics blobs) is used only to tag the
/// produced pieces with chunk ordinals, so the split statistics and the
/// location map know which chunk each fragment belongs to. Items must tile
/// the object when provided.
///
/// # Panics
///
/// Panics if `block_size == 0` or `k == 0`.
pub fn pack(object_len: u64, block_size: u64, k: usize, items: &[PackItem]) -> Layout {
    assert!(block_size > 0, "block size must be positive");
    assert!(k > 0, "k must be positive");

    let mut bins: Vec<Bin> = Vec::new();
    let mut start = 0u64;
    while start < object_len {
        let end = (start + block_size).min(object_len);
        bins.push(Bin {
            pieces: intersect(start, end, items),
            physical_pad: 0,
        });
        start = end;
    }
    if bins.is_empty() {
        bins.push(Bin::default());
    }

    // Group k bins per stripe, padding the final stripe with empty bins.
    let mut stripes = Vec::new();
    for group in bins.chunks(k) {
        let mut bins = group.to_vec();
        bins.resize(k, Bin::default());
        stripes.push(Stripe { bins });
    }
    Layout { stripes }
}

/// Splits `[start, end)` into pieces along item boundaries so each piece
/// carries at most one chunk tag.
fn intersect(start: u64, end: u64, items: &[PackItem]) -> Vec<Piece> {
    if items.is_empty() {
        return vec![Piece {
            start,
            end,
            chunk: None,
        }];
    }
    let mut out = Vec::new();
    let mut pos = start;
    // Items are sorted by offset (file order); find overlaps.
    for it in items {
        if it.end <= pos || it.start >= end {
            continue;
        }
        let s = pos.max(it.start);
        let e = end.min(it.end);
        if s > pos {
            out.push(Piece {
                start: pos,
                end: s,
                chunk: None,
            });
        }
        out.push(Piece {
            start: s,
            end: e,
            chunk: Some(it.chunk),
        });
        pos = e;
        if pos >= end {
            break;
        }
    }
    if pos < end {
        out.push(Piece {
            start: pos,
            end,
            chunk: None,
        });
    }
    out
}

/// Counts how many of `items` are split across more than one bin of
/// `layout` — the y-axis of the paper's Figure 4a.
pub fn count_split_chunks(layout: &Layout, items: &[PackItem]) -> usize {
    let mut bins_of: std::collections::HashMap<usize, std::collections::HashSet<(usize, usize)>> =
        std::collections::HashMap::new();
    for (si, s) in layout.stripes.iter().enumerate() {
        for (bi, b) in s.bins.iter().enumerate() {
            for p in &b.pieces {
                if let Some(c) = p.chunk {
                    bins_of.entry(c).or_default().insert((si, bi));
                }
            }
        }
    }
    items
        .iter()
        .filter(|it| bins_of.get(&it.chunk).is_some_and(|s| s.len() > 1))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcConfig;

    fn tile(sizes: &[u64]) -> Vec<PackItem> {
        let mut items = Vec::new();
        let mut pos = 0;
        for (i, &s) in sizes.iter().enumerate() {
            items.push(PackItem {
                chunk: i,
                start: pos,
                end: pos + s,
            });
            pos += s;
        }
        items
    }

    #[test]
    fn blocks_tile_object() {
        let layout = pack(1000, 256, 3, &[]);
        layout.assert_valid(1000, 3, false);
        // 4 blocks -> 2 stripes (3 + 1-with-2-empty).
        assert_eq!(layout.stripes.len(), 2);
        assert_eq!(layout.stripes[0].block_size(), 256);
        assert_eq!(layout.stripes[1].bins[0].data_len(), 1000 - 3 * 256);
        assert_eq!(layout.stripes[1].bins[1].data_len(), 0);
    }

    #[test]
    fn chunk_tags_follow_boundaries() {
        // Chunks of 100 bytes; blocks of 150: chunk 0 fits in block 0,
        // chunk 1 splits.
        let items = tile(&[100, 100, 100]);
        let layout = pack(300, 150, 2, &items);
        layout.assert_valid(300, 2, false);
        assert_eq!(count_split_chunks(&layout, &items), 1);
        // Block 0 holds all of chunk 0 and half of chunk 1.
        let b0 = &layout.stripes[0].bins[0];
        assert_eq!(b0.pieces.len(), 2);
        assert_eq!(b0.pieces[0].chunk, Some(0));
        assert_eq!(
            b0.pieces[1],
            Piece {
                start: 100,
                end: 150,
                chunk: Some(1)
            }
        );
    }

    #[test]
    fn small_block_splits_everything() {
        let items = tile(&[100, 100, 100, 100]);
        let layout = pack(400, 64, 6, &items);
        // Every 100-byte chunk crosses a 64-byte boundary.
        assert_eq!(count_split_chunks(&layout, &items), 4);
    }

    #[test]
    fn huge_block_splits_nothing() {
        let items = tile(&[100, 100, 100, 100]);
        let layout = pack(400, 1 << 20, 6, &items);
        assert_eq!(count_split_chunks(&layout, &items), 0);
        assert_eq!(layout.stripes.len(), 1);
    }

    #[test]
    fn near_optimal_overhead() {
        // Fixed blocks are the storage-optimal reference when the object
        // divides evenly.
        let layout = pack(1200, 100, 6, &[]);
        let ec = EcConfig::rs(9, 6);
        assert!(layout.overhead_vs_optimal(ec).abs() < 1e-9);
    }

    #[test]
    fn empty_object() {
        let layout = pack(0, 100, 6, &[]);
        assert_eq!(layout.stripes.len(), 1);
        assert_eq!(layout.data_len(), 0);
        layout.assert_valid(0, 6, false);
    }
}
