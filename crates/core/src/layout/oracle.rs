//! Exact solver for the stripe-construction problem — the stand-in for the
//! paper's Gurobi "Oracle".
//!
//! The ILP (paper Eq. 1): assign N chunks to bins of bin sets (k bins per
//! set, capacity C = the largest chunk size), minimizing the sum over bin
//! sets of their largest bin. This solver enumerates assignments of chunks
//! in descending size order with branch-and-bound:
//!
//! * **incumbent** seeded by FAC's heuristic solution,
//! * **lower bound** = max(Σ current bin-set maxima, ⌈total volume / k⌉),
//! * **symmetry breaking**: within a bin set only the first empty bin is
//!   tried, and bin set `l` may open only after `l − 1` is nonempty.
//!
//! The solver is exact when it finishes; like Gurobi in the paper
//! (Figure 10a: >3 hours at 35 chunks), its runtime grows super-
//! exponentially, so callers pass a wall-clock deadline and may receive
//! the best incumbent instead of a proven optimum.

use super::{fac, Bin, Layout, PackItem, Piece, Stripe};
use std::time::{Duration, Instant};

/// Outcome of an oracle run.
#[derive(Debug, Clone, PartialEq)]
pub struct OraclePack {
    /// Best layout found.
    pub layout: Layout,
    /// True when the search completed and the layout is proven optimal.
    pub proven_optimal: bool,
    /// Nodes explored (for runtime studies).
    pub nodes_explored: u64,
}

/// Runs the branch-and-bound solver over `items` with `k` bins per set.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn pack(k: usize, items: &[PackItem], deadline: Duration) -> OraclePack {
    assert!(k > 0, "k must be positive");
    let start = Instant::now();

    // Work on non-empty items sorted descending.
    let mut idx: Vec<usize> = (0..items.len()).filter(|&i| !items[i].is_empty()).collect();
    idx.sort_by(|&a, &b| items[b].len().cmp(&items[a].len()));
    let sizes: Vec<u64> = idx.iter().map(|&i| items[i].len()).collect();
    let n = sizes.len();

    // Seed the incumbent with FAC.
    let fac_layout = fac::pack(k, items);
    if n == 0 {
        return OraclePack {
            layout: fac_layout,
            proven_optimal: true,
            nodes_explored: 0,
        };
    }
    let capacity = sizes[0]; // C = max chunk size (paper's choice)
    let total: u64 = sizes.iter().sum();
    let mut best_obj = fac_layout.objective();

    struct Search<'a> {
        sizes: &'a [u64],
        k: usize,
        capacity: u64,
        deadline: Duration,
        start: Instant,
        nodes: u64,
        timed_out: bool,
        loads: Vec<Vec<u64>>, // [set][bin]
        maxima: Vec<u64>,     // per set
        assign: Vec<(usize, usize)>,
        remaining_volume: u64,
        best_obj: u64,
        best_assign: Option<Vec<(usize, usize)>>,
    }

    impl Search<'_> {
        fn solve(&mut self, item: usize) {
            self.nodes += 1;
            if self.timed_out
                || (self.nodes.is_multiple_of(4096) && self.start.elapsed() > self.deadline)
            {
                self.timed_out = true;
                return;
            }
            let current_obj: u64 = self.maxima.iter().sum();
            if item == self.sizes.len() {
                if current_obj < self.best_obj {
                    self.best_obj = current_obj;
                    self.best_assign = Some(self.assign.clone());
                }
                return;
            }
            // Lower bound: already-fixed maxima plus the volume bound for
            // whatever is not yet reflected in maxima.
            let placed_volume: u64 = self.loads.iter().flatten().sum();
            let volume_lb = (placed_volume + self.remaining_volume).div_ceil(self.k as u64);
            let lb = current_obj.max(volume_lb);
            if lb >= self.best_obj {
                return;
            }

            let size = self.sizes[item];
            let open_sets = self.loads.len();
            // Try existing sets (plus one fresh set at the end).
            for set in 0..=open_sets {
                if set == open_sets {
                    // Open a new set; symmetry: only bin 0.
                    self.loads.push(vec![0; self.k]);
                    self.maxima.push(0);
                    self.place(item, set, 0);
                    self.loads.pop();
                    self.maxima.pop();
                    if self.timed_out {
                        return;
                    }
                    continue;
                }
                let mut tried_empty = false;
                for bin in 0..self.k {
                    let load = self.loads[set][bin];
                    if load == 0 {
                        if tried_empty {
                            continue; // symmetric to a previous empty bin
                        }
                        tried_empty = true;
                    }
                    if load + size > self.capacity {
                        continue;
                    }
                    self.place(item, set, bin);
                    if self.timed_out {
                        return;
                    }
                }
            }
        }

        fn place(&mut self, item: usize, set: usize, bin: usize) {
            let size = self.sizes[item];
            let old_max = self.maxima[set];
            self.loads[set][bin] += size;
            self.maxima[set] = old_max.max(self.loads[set][bin]);
            self.remaining_volume -= size;
            self.assign.push((set, bin));

            self.solve(item + 1);

            self.assign.pop();
            self.remaining_volume += size;
            self.maxima[set] = old_max;
            self.loads[set][bin] -= size;
        }
    }

    let mut search = Search {
        sizes: &sizes,
        k,
        capacity,
        deadline,
        start,
        nodes: 0,
        timed_out: false,
        loads: Vec::new(),
        maxima: Vec::new(),
        assign: Vec::with_capacity(n),
        remaining_volume: total,
        best_obj,
        best_assign: None,
    };
    search.solve(0);
    best_obj = search.best_obj;
    // assignment[i] = (set, bin) for the i-th (descending) item.
    let best_assign = search.best_assign;
    let proven_optimal = !search.timed_out;
    let nodes_explored = search.nodes;

    let layout = match best_assign {
        None => fac_layout, // FAC was already optimal (or time ran out)
        Some(assign) => {
            let num_sets = assign.iter().map(|&(s, _)| s + 1).max().unwrap_or(1);
            let mut stripes: Vec<Stripe> = (0..num_sets)
                .map(|_| Stripe {
                    bins: vec![Bin::default(); k],
                })
                .collect();
            for (pos, &(set, bin)) in assign.iter().enumerate() {
                let it = items[idx[pos]];
                stripes[set].bins[bin].pieces.push(Piece {
                    start: it.start,
                    end: it.end,
                    chunk: Some(it.chunk),
                });
            }
            Layout { stripes }
        }
    };
    debug_assert_eq!(layout.objective(), best_obj);
    OraclePack {
        layout,
        proven_optimal,
        nodes_explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcConfig;

    fn tile(sizes: &[u64]) -> Vec<PackItem> {
        let mut items = Vec::new();
        let mut pos = 0;
        for (i, &s) in sizes.iter().enumerate() {
            items.push(PackItem {
                chunk: i,
                start: pos,
                end: pos + s,
            });
            pos += s;
        }
        items
    }

    const MINUTE: Duration = Duration::from_secs(60);

    #[test]
    fn trivial_cases() {
        let p = pack(3, &[], MINUTE);
        assert!(p.proven_optimal);
        let items = tile(&[100]);
        let p = pack(3, &items, MINUTE);
        assert!(p.proven_optimal);
        assert_eq!(p.layout.objective(), 100);
    }

    #[test]
    fn finds_perfect_packing() {
        // 4 chunks: 60, 40, 50, 50 with k=2: optimal = one set
        // {60+40 | 50+50}? capacity C=60, so 60|(40)... loads can't exceed 60.
        // Optimal: sets {60, 50} and {50, 40} -> obj 110, or {60,40+?}..
        // Enumerate: capacity 60 allows bins {60},{50},{50},{40}: 2 sets
        // -> obj 60+50=110.
        let items = tile(&[60, 40, 50, 50]);
        let p = pack(2, &items, MINUTE);
        assert!(p.proven_optimal);
        assert_eq!(p.layout.objective(), 110);
        p.layout.assert_valid(200, 2, true);
    }

    #[test]
    fn beats_or_matches_fac() {
        // An instance where greedy FAC is suboptimal is hard to hand-pick;
        // at minimum the oracle can never be worse.
        for seed in 0..8u64 {
            let sizes: Vec<u64> = (0..8).map(|i| ((i + 1) * 13 + seed * 7) % 50 + 5).collect();
            let items = tile(&sizes);
            let fac_obj = fac::pack(3, &items).objective();
            let p = pack(3, &items, MINUTE);
            assert!(p.proven_optimal, "should finish at n=8");
            assert!(
                p.layout.objective() <= fac_obj,
                "oracle {} worse than fac {} on seed {seed}",
                p.layout.objective(),
                fac_obj
            );
            p.layout.assert_valid(sizes.iter().sum(), 3, true);
        }
    }

    #[test]
    fn respects_deadline() {
        // 40 items with diverse sizes would take far too long exactly;
        // the solver must return promptly with the FAC incumbent or
        // better.
        let sizes: Vec<u64> = (0..40).map(|i| (i * 7919) % 1000 + 10).collect();
        let items = tile(&sizes);
        let t0 = Instant::now();
        let p = pack(6, &items, Duration::from_millis(50));
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(!p.proven_optimal);
        let fac_obj = fac::pack(6, &items).objective();
        assert!(p.layout.objective() <= fac_obj);
        p.layout.assert_valid(sizes.iter().sum(), 6, true);
    }

    #[test]
    fn optimal_overhead_on_uniform() {
        let items = tile(&[100; 6]);
        let p = pack(3, &items, MINUTE);
        assert!(p.proven_optimal);
        let ec = EcConfig::rs(5, 3);
        assert!(p.layout.overhead_vs_optimal(ec).abs() < 1e-12);
    }
}
