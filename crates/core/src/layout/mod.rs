//! Stripe layouts: how an object's bytes are assigned to erasure-code data
//! blocks.
//!
//! A [`Layout`] is a list of [`Stripe`]s; each stripe holds `k` [`Bin`]s
//! (data blocks); each bin holds an ordered list of [`Piece`]s — byte
//! ranges of the object, optionally tagged with the column chunk they
//! carry — plus physically stored padding (used only by the padding
//! baseline).
//!
//! Four packers produce layouts:
//!
//! | module | policy | chunk splits | physical padding |
//! |---|---|---|---|
//! | [`fixed`] | format-oblivious fixed blocks | yes | no |
//! | [`padding`] | Adams et al. alignment padding | only chunks > block | yes |
//! | [`fac`] | Fusion Algorithm 1 | never | no (implicit only) |
//! | [`oracle`] | exact branch & bound | never | no (implicit only) |

pub mod fac;
pub mod fixed;
pub mod oracle;
pub mod padding;

use crate::config::EcConfig;

/// A byte range of the source object placed into a bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// Start offset within the object.
    pub start: u64,
    /// End offset (exclusive).
    pub end: u64,
    /// The chunk ordinal this piece belongs to, when it carries (part of)
    /// a column chunk. `None` for format-oblivious pieces.
    pub chunk: Option<usize>,
}

impl Piece {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for an empty piece (never produced by the packers).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// One erasure-code data block's contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bin {
    /// Object ranges stored in this bin, in order.
    pub pieces: Vec<Piece>,
    /// Physically stored zero padding at the end of the bin (padding
    /// baseline only). FAC's padding is *implicit*: it exists only inside
    /// the parity computation and is never stored.
    pub physical_pad: u64,
}

impl Bin {
    /// Bytes of real object data in this bin.
    pub fn data_len(&self) -> u64 {
        self.pieces.iter().map(Piece::len).sum()
    }

    /// Bytes this bin occupies on disk (data + physical padding).
    pub fn stored_len(&self) -> u64 {
        self.data_len() + self.physical_pad
    }
}

/// One erasure-code stripe: `k` bins plus `n − k` parity blocks sized to
/// the largest bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stripe {
    /// The data bins; length is always `k`.
    pub bins: Vec<Bin>,
}

impl Stripe {
    /// Size of the largest bin — the size of every parity block of this
    /// stripe (paper §4.2: "the size of parity blocks in a stripe depends
    /// solely on the largest data block size within the same stripe").
    pub fn block_size(&self) -> u64 {
        self.bins.iter().map(Bin::stored_len).max().unwrap_or(0)
    }

    /// Total real data bytes in the stripe.
    pub fn data_len(&self) -> u64 {
        self.bins.iter().map(Bin::data_len).sum()
    }
}

/// A complete layout of one object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Layout {
    /// The stripes, in order.
    pub stripes: Vec<Stripe>,
}

impl Layout {
    /// Total real object bytes covered by the layout.
    pub fn data_len(&self) -> u64 {
        self.stripes.iter().map(Stripe::data_len).sum()
    }

    /// Bytes stored on disk for data blocks (including physical padding,
    /// excluding parity).
    pub fn stored_data_len(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.bins.iter().map(Bin::stored_len).sum::<u64>())
            .sum()
    }

    /// Bytes stored on disk for parity blocks under `ec`.
    pub fn parity_len(&self, ec: EcConfig) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.block_size() * ec.parity() as u64)
            .sum()
    }

    /// Total stored bytes (data + padding + parity).
    pub fn total_stored(&self, ec: EcConfig) -> u64 {
        self.stored_data_len() + self.parity_len(ec)
    }

    /// Additional storage overhead relative to the optimal
    /// `data × n / k`, as a fraction (0.012 = 1.2%). This is the metric of
    /// the paper's Figures 4d and 16.
    pub fn overhead_vs_optimal(&self, ec: EcConfig) -> f64 {
        let data = self.data_len();
        if data == 0 {
            return 0.0;
        }
        let optimal = data as f64 * ec.n as f64 / ec.k as f64;
        (self.total_stored(ec) as f64 - optimal) / optimal
    }

    /// The objective the stripe-construction problem minimizes: the sum of
    /// per-stripe maximum bin sizes (∝ parity bytes).
    pub fn objective(&self) -> u64 {
        self.stripes.iter().map(Stripe::block_size).sum()
    }

    /// Validates structural invariants against the chunk extents the
    /// layout was built from. Checks:
    ///
    /// 1. every byte of the object is covered exactly once,
    /// 2. each stripe has exactly `k` bins,
    /// 3. if `no_splits`, every chunk sits wholly inside one bin.
    ///
    /// Panics with a description on violation (test/debug helper).
    pub fn assert_valid(&self, object_len: u64, k: usize, no_splits: bool) {
        let mut covered: Vec<(u64, u64)> = Vec::new();
        for s in &self.stripes {
            assert_eq!(s.bins.len(), k, "stripe must have exactly k bins");
            for b in &s.bins {
                for p in &b.pieces {
                    assert!(!p.is_empty(), "empty piece");
                    assert!(p.end <= object_len, "piece past end of object");
                    covered.push((p.start, p.end));
                }
            }
        }
        covered.sort_unstable();
        let mut pos = 0;
        for (s, e) in covered {
            assert_eq!(s, pos, "gap or overlap at byte {pos}");
            pos = e;
        }
        assert_eq!(pos, object_len, "layout does not cover the whole object");

        if no_splits {
            // Each chunk id must appear in exactly one bin.
            let mut seen = std::collections::HashMap::new();
            for (si, s) in self.stripes.iter().enumerate() {
                for (bi, b) in s.bins.iter().enumerate() {
                    for p in &b.pieces {
                        if let Some(c) = p.chunk {
                            let prev = seen.insert(c, (si, bi));
                            assert!(
                                prev.is_none() || prev == Some((si, bi)),
                                "chunk {c} split across bins"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// An item to pack: one column chunk (or pseudo-chunk such as the footer)
/// with its byte extent in the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackItem {
    /// Chunk ordinal (stable across packers; used by the location map).
    pub chunk: usize,
    /// Start offset in the object.
    pub start: u64,
    /// End offset (exclusive).
    pub end: u64,
}

impl PackItem {
    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the item covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub(crate) fn piece(&self) -> Piece {
        Piece {
            start: self.start,
            end: self.end,
            chunk: Some(self.chunk),
        }
    }
}

/// Derives pack items from a parsed analytics footer: one item per column
/// chunk in file order, plus a final pseudo-chunk covering the footer
/// bytes themselves (they must be stored too).
pub fn items_from_meta(meta: &fusion_format::footer::FileMeta, object_len: u64) -> Vec<PackItem> {
    let mut items = Vec::with_capacity(meta.num_chunks() + 1);
    let mut idx = 0;
    for (_, _, c) in meta.chunks() {
        items.push(PackItem {
            chunk: idx,
            start: c.offset,
            end: c.offset + c.len,
        });
        idx += 1;
    }
    let data_end = meta.data_len();
    if data_end < object_len {
        items.push(PackItem {
            chunk: idx,
            start: data_end,
            end: object_len,
        });
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(chunk: usize, start: u64, end: u64) -> PackItem {
        PackItem { chunk, start, end }
    }

    #[test]
    fn bin_and_stripe_sizes() {
        let stripe = Stripe {
            bins: vec![
                Bin {
                    pieces: vec![item(0, 0, 100).piece()],
                    physical_pad: 0,
                },
                Bin {
                    pieces: vec![item(1, 100, 130).piece(), item(2, 130, 160).piece()],
                    physical_pad: 40,
                },
            ],
        };
        assert_eq!(stripe.bins[0].data_len(), 100);
        assert_eq!(stripe.bins[1].data_len(), 60);
        assert_eq!(stripe.bins[1].stored_len(), 100);
        assert_eq!(stripe.block_size(), 100);
        assert_eq!(stripe.data_len(), 160);
    }

    #[test]
    fn overhead_math() {
        // One stripe, k=2, bins of 100 and 50, n=3 -> parity 100.
        let layout = Layout {
            stripes: vec![Stripe {
                bins: vec![
                    Bin {
                        pieces: vec![item(0, 0, 100).piece()],
                        physical_pad: 0,
                    },
                    Bin {
                        pieces: vec![item(1, 100, 150).piece()],
                        physical_pad: 0,
                    },
                ],
            }],
        };
        let ec = EcConfig::rs(3, 2);
        assert_eq!(layout.data_len(), 150);
        assert_eq!(layout.parity_len(ec), 100);
        assert_eq!(layout.total_stored(ec), 250);
        // optimal = 150 * 3/2 = 225; overhead = 25/225.
        assert!((layout.overhead_vs_optimal(ec) - 25.0 / 225.0).abs() < 1e-12);
        assert_eq!(layout.objective(), 100);
    }

    #[test]
    fn validity_checks_pass() {
        let layout = Layout {
            stripes: vec![Stripe {
                bins: vec![
                    Bin {
                        pieces: vec![item(0, 0, 10).piece()],
                        physical_pad: 0,
                    },
                    Bin {
                        pieces: vec![item(1, 10, 20).piece()],
                        physical_pad: 0,
                    },
                ],
            }],
        };
        layout.assert_valid(20, 2, true);
    }

    #[test]
    #[should_panic(expected = "gap or overlap")]
    fn validity_detects_gaps() {
        let layout = Layout {
            stripes: vec![Stripe {
                bins: vec![
                    Bin {
                        pieces: vec![item(0, 0, 10).piece()],
                        physical_pad: 0,
                    },
                    Bin {
                        pieces: vec![item(1, 15, 20).piece()],
                        physical_pad: 0,
                    },
                ],
            }],
        };
        layout.assert_valid(20, 2, false);
    }

    #[test]
    #[should_panic(expected = "split across bins")]
    fn validity_detects_splits() {
        let layout = Layout {
            stripes: vec![Stripe {
                bins: vec![
                    Bin {
                        pieces: vec![Piece {
                            start: 0,
                            end: 10,
                            chunk: Some(0),
                        }],
                        physical_pad: 0,
                    },
                    Bin {
                        pieces: vec![Piece {
                            start: 10,
                            end: 20,
                            chunk: Some(0),
                        }],
                        physical_pad: 0,
                    },
                ],
            }],
        };
        layout.assert_valid(20, 2, true);
    }

    #[test]
    fn items_from_meta_includes_footer() {
        use fusion_format::prelude::*;
        let schema = Schema::new(vec![Field::new("x", LogicalType::Int64)]);
        let table = Table::new(schema, vec![ColumnData::Int64((0..100).collect())]).unwrap();
        let bytes = write_table(&table, WriteOptions { rows_per_group: 40 }).unwrap();
        let meta = parse_footer(&bytes).unwrap();
        let items = items_from_meta(&meta, bytes.len() as u64);
        // 3 row groups x 1 column + footer pseudo-chunk.
        assert_eq!(items.len(), 4);
        // Items tile the object exactly.
        let mut pos = 0;
        for it in &items {
            assert_eq!(it.start, pos);
            pos = it.end;
        }
        assert_eq!(pos, bytes.len() as u64);
    }
}
