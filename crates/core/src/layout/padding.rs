//! The padding baseline of Adams et al. (HotStorage '21): keep fixed-size
//! erasure-code blocks, but insert physical zero padding into the object so
//! that column chunks align with block boundaries.
//!
//! If placing a chunk in the current block would split it, the remainder of
//! the block is filled with padding and the chunk starts the next block.
//! Chunks larger than a block unavoidably span consecutive blocks. The
//! padding is *stored*, which is what makes this approach expensive
//! (paper Figure 4d: up to >100% extra storage, Figure 16b: up to 83.8%).

use super::{Bin, Layout, PackItem, Piece, Stripe};

/// Result of padding-based packing.
#[derive(Debug, Clone, PartialEq)]
pub struct PaddingPack {
    /// The produced layout (physical padding recorded per bin).
    pub layout: Layout,
    /// Total padding bytes inserted.
    pub pad_bytes: u64,
}

/// Packs `items` (in object order) into `block_size` blocks with alignment
/// padding; `k` blocks per stripe.
///
/// # Panics
///
/// Panics if `block_size == 0` or `k == 0`, or items are empty.
pub fn pack(block_size: u64, k: usize, items: &[PackItem]) -> PaddingPack {
    assert!(block_size > 0, "block size must be positive");
    assert!(k > 0, "k must be positive");
    assert!(!items.is_empty(), "padding pack needs items");

    let mut bins: Vec<Bin> = vec![Bin::default()];
    let mut pad_bytes = 0u64;

    for it in items {
        if it.is_empty() {
            continue;
        }
        let cur = bins.last_mut().expect("at least one bin");
        let used = cur.data_len() + cur.physical_pad;
        let room = block_size - used;
        if it.len() <= room {
            cur.pieces.push(it.piece());
            continue;
        }
        // Chunk doesn't fit in the remaining space.
        if it.len() <= block_size {
            // Pad out the current block and relocate the chunk.
            if used > 0 {
                cur.physical_pad += room;
                pad_bytes += room;
            }
            bins.push(Bin {
                pieces: vec![it.piece()],
                physical_pad: 0,
            });
        } else {
            // Oversized chunk: it must span blocks. Start it in a fresh
            // block to keep the split count minimal.
            if used > 0 {
                cur.physical_pad += room;
                pad_bytes += room;
                bins.push(Bin::default());
            }
            let mut start = it.start;
            while start < it.end {
                let end = (start + block_size).min(it.end);
                let cur = bins.last_mut().expect("fresh bin exists");
                cur.pieces.push(Piece {
                    start,
                    end,
                    chunk: Some(it.chunk),
                });
                start = end;
                if start < it.end {
                    bins.push(Bin::default());
                }
            }
        }
    }

    // Drop a trailing empty bin left by an exactly-full block.
    if bins.last().is_some_and(|b| b.stored_len() == 0) && bins.len() > 1 {
        bins.pop();
    }

    let mut stripes = Vec::new();
    for group in bins.chunks(k) {
        let mut bins = group.to_vec();
        bins.resize(k, Bin::default());
        stripes.push(Stripe { bins });
    }
    PaddingPack {
        layout: Layout { stripes },
        pad_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcConfig;
    use crate::layout::fixed::count_split_chunks;

    fn tile(sizes: &[u64]) -> Vec<PackItem> {
        let mut items = Vec::new();
        let mut pos = 0;
        for (i, &s) in sizes.iter().enumerate() {
            items.push(PackItem {
                chunk: i,
                start: pos,
                end: pos + s,
            });
            pos += s;
        }
        items
    }

    #[test]
    fn aligns_chunks_with_padding() {
        // Blocks of 100; chunks 60, 60: second must relocate, 40 pad.
        let items = tile(&[60, 60]);
        let p = pack(100, 2, &items);
        assert_eq!(p.pad_bytes, 40);
        assert_eq!(count_split_chunks(&p.layout, &items), 0);
        assert_eq!(p.layout.stripes[0].bins[0].physical_pad, 40);
        assert_eq!(p.layout.stripes[0].bins[0].stored_len(), 100);
    }

    #[test]
    fn no_padding_when_chunks_fit_exactly() {
        let items = tile(&[50, 50, 100]);
        let p = pack(100, 2, &items);
        assert_eq!(p.pad_bytes, 0);
        assert_eq!(count_split_chunks(&p.layout, &items), 0);
    }

    #[test]
    fn oversized_chunk_spans_blocks() {
        let items = tile(&[30, 250, 30]);
        let p = pack(100, 2, &items);
        // The 250-byte chunk occupies 3 blocks (100+100+50); chunk 0's
        // block is padded by 70.
        assert_eq!(count_split_chunks(&p.layout, &items), 1);
        assert_eq!(p.pad_bytes, 70);
        // Data coverage is complete despite padding.
        let data: u64 = p.layout.data_len();
        assert_eq!(data, 310);
    }

    #[test]
    fn worst_case_overhead_is_large() {
        // Chunks of size B/2 + 1 waste nearly half of every block.
        let items = tile(&[51, 51, 51, 51, 51, 51]);
        let p = pack(100, 6, &items);
        let ec = EcConfig::rs(9, 6);
        let overhead = p.layout.overhead_vs_optimal(ec);
        assert!(overhead > 0.5, "expected large overhead, got {overhead}");
    }

    #[test]
    fn coverage_is_exact() {
        let items = tile(&[10, 90, 40, 170, 5, 5, 100]);
        let p = pack(100, 3, &items);
        p.layout.assert_valid(420, 3, false);
    }
}
