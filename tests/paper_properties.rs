//! Paper-shape regression tests: the qualitative claims of the evaluation
//! must keep holding as the code evolves. Each test names the paper
//! artifact it guards.

use fusion::prelude::*;
use fusion_bench::harness::{reduction, BenchEnv, SystemKind};
use fusion_bench::microbench::microbench_query;
use fusion_core::config::EcConfig;
use fusion_core::layout::{fac, items_from_meta, padding};
use fusion_workloads::synth::{zipf_chunk_sizes, SynthConfig};
use fusion_workloads::Dataset;

fn tiny_env() -> BenchEnv {
    BenchEnv::new(0.05, 4, 120, 8)
}

/// Figure 6: lineitem compression ratios span roughly 1.5×–60× with a
/// median near 10.
#[test]
fn fig6_compression_shape() {
    let env = tiny_env();
    let meta = parse_footer(env.lineitem_file()).expect("valid");
    let mut ratios: Vec<f64> = (0..16)
        .map(|c| {
            meta.row_groups
                .iter()
                .map(|rg| rg.chunks[c].compressibility())
                .sum::<f64>()
                / meta.row_groups.len() as f64
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = ratios[8];
    assert!(
        (4.0..25.0).contains(&median),
        "median ratio {median} (paper: 9.3)"
    );
    assert!(
        *ratios.last().expect("nonempty") > 20.0,
        "max {} (paper: 63.5)",
        ratios.last().unwrap()
    );
    assert!(ratios[0] < 3.5, "min {} (paper: ~1.4)", ratios[0]);
}

/// Figure 4a: a large fraction of chunks split under fixed blocks, and
/// the fraction shrinks as blocks grow.
#[test]
fn fig4a_split_fraction_shrinks_with_block_size() {
    let file = Dataset::TpchLineitem.file(0.05);
    let meta = parse_footer(&file).expect("valid");
    let items = items_from_meta(&meta, file.len() as u64);
    let chunk_items = &items[..items.len() - 1];
    let split_at = |block: u64| {
        let layout = fusion_core::layout::fixed::pack(file.len() as u64, block, 6, &items);
        fusion_core::layout::fixed::count_split_chunks(&layout, chunk_items)
    };
    let small = split_at(file.len() as u64 / 10_000);
    let large = split_at(file.len() as u64 / 100);
    assert!(small >= large, "splits must not grow with block size");
    assert!(
        large * 100 / chunk_items.len() >= 15,
        "paper: even 100MB blocks split ~40% of lineitem chunks; got {}/{}",
        large,
        chunk_items.len()
    );
}

/// Figure 16a: FAC's overhead falls toward 0 as chunk count grows, for
/// every skew.
#[test]
fn fig16a_overhead_decreases_with_chunks() {
    let ec = EcConfig::RS_9_6;
    for theta in [0.0, 0.5, 0.99] {
        let overhead = |n: usize| {
            let sizes = zipf_chunk_sizes(SynthConfig {
                num_chunks: n,
                theta,
                seed: 7,
                ..Default::default()
            });
            let mut pos = 0u64;
            let items: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let it = fusion_core::layout::PackItem {
                        chunk: i,
                        start: pos,
                        end: pos + s,
                    };
                    pos += s;
                    it
                })
                .collect();
            fac::pack(ec.k, &items).overhead_vs_optimal(ec)
        };
        let big = overhead(500);
        assert!(
            big < 0.02,
            "theta {theta}: 500 chunks gave {big} (paper: <1%)"
        );
        assert!(
            overhead(20) > big,
            "theta {theta}: overhead must shrink with more chunks"
        );
    }
}

/// Figures 4d / 16b: padding costs dramatically more than FAC on every
/// real-world dataset.
#[test]
fn fig16b_fac_beats_padding_everywhere() {
    let ec = EcConfig::RS_9_6;
    for d in Dataset::ALL {
        let file = d.file(0.02);
        let meta = parse_footer(&file).expect("valid");
        let items = items_from_meta(&meta, file.len() as u64);
        let block = (file.len() as u64 * (100 << 20) / d.paper_bytes()).max(1 << 10);
        let pad = padding::pack(block, ec.k, &items)
            .layout
            .overhead_vs_optimal(ec);
        let fac_oh = fac::pack(ec.k, &items).overhead_vs_optimal(ec);
        assert!(
            fac_oh * 3.0 < pad,
            "{}: fac {fac_oh:.4} should be far below padding {pad:.4}",
            d.name()
        );
        assert!(
            fac_oh < 0.03,
            "{}: fac overhead {fac_oh:.4} (paper: ≤1.24%)",
            d.name()
        );
    }
}

/// Figure 13 headline: on the big low-compressibility column (5), Fusion
/// cuts both median and tail latency; on the tiny compressed column (9)
/// the two systems are within noise.
#[test]
fn fig13_headline_direction() {
    let env = tiny_env();
    let f5 = microbench_query(&env, SystemKind::Fusion, 5, 0.01);
    let b5 = microbench_query(&env, SystemKind::Baseline, 5, 0.01);
    assert!(
        reduction(b5.latency.p50, f5.latency.p50) > 0.15,
        "col5 p50: fusion {} vs baseline {}",
        f5.latency.p50,
        b5.latency.p50
    );
    assert!(
        reduction(b5.latency.p99, f5.latency.p99) > 0.25,
        "col5 p99: fusion {} vs baseline {}",
        f5.latency.p99,
        b5.latency.p99
    );
    let f9 = microbench_query(&env, SystemKind::Fusion, 9, 0.01);
    let b9 = microbench_query(&env, SystemKind::Baseline, 9, 0.01);
    let r = reduction(b9.latency.p50, f9.latency.p50);
    assert!(r.abs() < 0.25, "col9 should be near parity, got {r}");
    // Fusion moves far fewer bytes on the big column (paper: 64x).
    assert!(
        f5.net_bytes * 5 < b5.net_bytes,
        "traffic {} vs {}",
        f5.net_bytes,
        b5.net_bytes
    );
}

/// Figure 15 / Table 4: the four real-world queries all favor Fusion, and
/// Q4's fare projection is suppressed by the Cost Equation while its date
/// projection is pushed.
#[test]
fn fig15_q4_mixed_decisions() {
    let env = tiny_env();
    let taxi_bytes = fusion_workloads::taxi::taxi_file(fusion_workloads::taxi::TaxiConfig {
        rows_per_group: 1500,
        ..Default::default()
    });
    let store = env.build_store_scaled(
        SystemKind::Fusion,
        "taxi",
        &taxi_bytes,
        Dataset::Taxi.paper_bytes(),
    );
    let out = store
        .query_as("taxi_0", &fusion_workloads::taxi::q4("taxi_0"))
        .expect("q4 runs");
    let schema = store
        .object("taxi_0")
        .expect("stored")
        .file_meta
        .as_ref()
        .expect("analytics")
        .schema
        .clone();
    let fare = schema.index_of("fare").expect("fare exists");
    let date = schema.index_of("pickup_date").expect("date exists");
    assert!(
        out.decisions
            .iter()
            .filter(|d| d.column == fare)
            .all(|d| !d.pushed_down),
        "fare must not be pushed down (paper: ratio 152 x 6.3% >> 1)"
    );
    assert!(
        out.decisions
            .iter()
            .filter(|d| d.column == date)
            .all(|d| d.pushed_down),
        "pickup_date must be pushed down"
    );
}
