//! Workspace-level integration tests: every crate together, through the
//! public umbrella API.

use fusion::prelude::*;
use fusion_workloads::Dataset;

fn scaled_store(file: &[u8]) -> Store {
    let mut cfg = StoreConfig::fusion();
    cfg.block_size = (file.len() as u64 / 100).max(16 << 10);
    cfg.overhead_threshold = 0.1;
    let mut store = Store::new(cfg).expect("valid config");
    store.put("data", file.to_vec()).expect("put succeeds");
    store
}

#[test]
fn every_dataset_roundtrips_through_the_store() {
    for d in Dataset::ALL {
        let file = d.file(0.02);
        let store = scaled_store(&file);
        let got = store.get("data", 0, file.len() as u64).expect("get");
        assert_eq!(got, file, "{} bytes corrupted", d.name());
        // The stored object still parses as an analytics file.
        let meta = parse_footer(&got).expect("valid footer");
        assert_eq!(meta.schema.len(), d.columns());
    }
}

#[test]
fn fac_never_splits_chunks_on_any_dataset() {
    for d in Dataset::ALL {
        let file = d.file(0.02);
        let store = scaled_store(&file);
        let meta = store.object("data").expect("stored");
        assert_eq!(meta.policy_used, "fac", "{}", d.name());
        for c in 0..meta.num_chunks() {
            assert_eq!(
                meta.chunk_fragments(c).len(),
                1,
                "{}: chunk {c} fragmented",
                d.name()
            );
        }
        // And the storage overhead respects the configured budget.
        assert!(meta.overhead_vs_optimal <= 0.1 + 1e-9, "{}", d.name());
    }
}

#[test]
fn queries_work_on_every_dataset() {
    let cases = [
        (
            Dataset::TpchLineitem,
            "SELECT count(*) FROM data WHERE quantity < 10",
        ),
        (
            Dataset::Taxi,
            "SELECT avg(fare) FROM data WHERE passenger_count = 1",
        ),
        (
            Dataset::RecipeNlg,
            "SELECT count(*) FROM data WHERE source = 'Gathered'",
        ),
        (
            Dataset::UkPp,
            "SELECT max(price) FROM data WHERE property_type = 'D'",
        ),
    ];
    for (d, sql) in cases {
        let file = d.file(0.02);
        let store = scaled_store(&file);
        let out = store
            .query(sql)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name()));
        assert!(!out.result.aggregates.is_empty(), "{}", d.name());
        assert!(out.selectivity > 0.0, "{} matched nothing", d.name());
    }
}

#[test]
fn baseline_and_fusion_agree_on_real_workload_queries() {
    let file = Dataset::TpchLineitem.file(0.02);
    let fusion = scaled_store(&file);
    let mut base_cfg =
        StoreConfig::baseline().with_block_size((file.len() as u64 / 100).max(16 << 10));
    base_cfg.overhead_threshold = 0.1;
    let mut baseline = Store::new(base_cfg).expect("valid config");
    baseline.put("data", file.to_vec()).expect("put");

    for sql in [
        fusion_workloads::tpch::q1("data"),
        fusion_workloads::tpch::q2("data"),
        "SELECT orderkey, extendedprice FROM data WHERE extendedprice < 1000.0".to_string(),
        "SELECT shipmode FROM data WHERE returnflag = 'R' AND quantity >= 49".to_string(),
    ] {
        let a = fusion.query(&sql).expect("fusion query");
        let b = baseline.query(&sql).expect("baseline query");
        assert_eq!(a.result, b.result, "mismatch on {sql}");
    }
}

#[test]
fn degraded_queries_after_recovery_match() {
    let file = Dataset::UkPp.file(0.02);
    let mut cfg = StoreConfig::fusion();
    cfg.overhead_threshold = 0.1;
    cfg.block_size = (file.len() as u64 / 100).max(16 << 10);
    let mut store = Store::new(cfg).expect("valid config");
    store.put("data", file).expect("put");
    let sql = "SELECT count(*), avg(price) FROM data WHERE duration = 'F'";
    let before = store.query(sql).expect("healthy query");

    store.fail_node(2).expect("fail");
    store.fail_node(6).expect("fail");
    // Ranged degraded read still correct while down.
    let _ = store.get("data", 0, 128).expect("degraded read");
    store.recover_node(2).expect("recover");
    store.recover_node(6).expect("recover");
    let after = store.query(sql).expect("query after recovery");
    assert_eq!(before.result, after.result);
}

#[test]
fn umbrella_prelude_supports_the_readme_flow() {
    // The README quickstart, verbatim in spirit.
    let schema = Schema::new(vec![
        Field::new("name", LogicalType::Utf8),
        Field::new("salary", LogicalType::Int64),
    ]);
    let table = Table::new(
        schema,
        vec![
            ColumnData::Utf8(vec!["Alice".into(), "Bob".into()]),
            ColumnData::Int64(vec![70_000, 80_000]),
        ],
    )
    .expect("valid table");
    let bytes = write_table(&table, WriteOptions { rows_per_group: 1 }).expect("write");
    let reader = FileReader::open(&bytes).expect("open");
    assert_eq!(reader.read_table().expect("read"), table);
    let q = parse("SELECT salary FROM Employees WHERE name == 'Bob'").expect("parse");
    assert_eq!(q.table, "Employees");
}

#[test]
fn query_with_too_many_failures_returns_typed_error() {
    use fusion::core::error::StoreError;
    let file = Dataset::TpchLineitem.file(0.02);
    let mut store = scaled_store(&file);
    // Break the stripe holding the first `quantity` chunk beyond repair:
    // RS(9,6) tolerates 3 lost blocks per stripe; lose 4 nodes including
    // that chunk's host, so the pushdown query must hit the lost stripe.
    let (first, ..) = {
        let meta = store.object("data").expect("stored");
        let fm = meta.file_meta.as_ref().expect("analytics file");
        let qcol = fm
            .schema
            .fields()
            .iter()
            .position(|f| f.name == "quantity")
            .expect("lineitem has a quantity column");
        let ordinal = meta.chunk_ordinal(0, qcol).expect("chunk exists");
        (meta.chunk_fragments(ordinal)[0].node,)
    };
    let mut failed = vec![first];
    for n in 0..9 {
        if failed.len() == 4 {
            break;
        }
        if n != first {
            failed.push(n);
        }
    }
    for &n in &failed {
        store.fail_node(n).expect("fail");
    }
    // An unpruneable predicate, so the broken chunk cannot be skipped.
    let err = store
        .query("SELECT quantity FROM data WHERE quantity < 1000000")
        .expect_err("query over unrecoverable data must fail, not fabricate rows");
    assert!(
        matches!(err, StoreError::Unrecoverable(_)),
        "expected a typed unrecoverable error, got: {err:?}"
    );
}
