//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro
//! (mixed `name in strategy` / `name: Type` parameters, optional
//! `#![proptest_config(..)]`), `prop_assert*` macros, `prop_oneof!`,
//! `any::<T>()`, range/tuple/`Vec` strategies, `prop::collection::{vec,
//! btree_set}`, `prop_map`/`prop_flat_map`/`boxed`, and `&str`
//! strategies for the regex subset `[class]{m,n}`.
//!
//! No shrinking is performed: a failing case panics with the iteration
//! number; rerun with the same binary to reproduce (generation is
//! deterministic per test name). See `vendor/README.md`.

use std::marker::PhantomData;

/// Deterministic generator used to produce test cases (SplitMix64,
/// seeded from the test's module path + name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Error produced by a failing (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the test fails.
    Fail(String),
    /// Case rejected by `prop_assume!` — skipped, not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical "arbitrary" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(61) as i32 - 30;
        m * (2.0f64).powi(e)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).new_value(rng)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// Regex-lite string strategies: `"[class]{m,n}"` and literal chars.
// ---------------------------------------------------------------------

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => return out,
            '\\' => {
                let esc = chars.next().expect("dangling escape in class");
                let ch = match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    'x' => {
                        let h1 = chars.next().expect("\\x needs two hex digits");
                        let h2 = chars.next().expect("\\x needs two hex digits");
                        let v = u32::from_str_radix(&format!("{h1}{h2}"), 16)
                            .expect("valid hex escape");
                        char::from_u32(v).expect("valid char escape")
                    }
                    other => other,
                };
                out.push(ch);
                prev = Some(ch);
            }
            '-' => {
                // Range `a-z` (or a literal '-' when first/last).
                match (prev, chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        let hi = if hi == '\\' {
                            let esc = chars.next().expect("dangling escape");
                            match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                'x' => {
                                    let h1 = chars.next().expect("hex");
                                    let h2 = chars.next().expect("hex");
                                    char::from_u32(
                                        u32::from_str_radix(&format!("{h1}{h2}"), 16)
                                            .expect("valid hex"),
                                    )
                                    .expect("valid char")
                                }
                                other => other,
                            }
                        } else {
                            hi
                        };
                        out.pop();
                        for v in (lo as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                out.push(ch);
                            }
                        }
                        prev = None;
                    }
                    _ => {
                        out.push('-');
                        prev = Some('-');
                    }
                }
            }
            other => {
                out.push(other);
                prev = Some(other);
            }
        }
    }
    panic!("unterminated character class");
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (
                    a.parse().expect("repeat lower bound"),
                    b.parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = spec.parse().expect("repeat count");
                    (n, n)
                }
            };
            assert!(lo <= hi, "bad repeat bounds");
            return (lo, hi);
        }
        spec.push(c);
    }
    panic!("unterminated repeat");
}

fn gen_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = match c {
            '[' => parse_class(&mut chars),
            '\\' => {
                let esc = chars.next().expect("dangling escape");
                vec![match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }]
            }
            other => vec![other],
        };
        let (lo, hi) = parse_repeat(&mut chars);
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            if alphabet.is_empty() {
                continue;
            }
            let i = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[i]);
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Inclusive size bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum size.
        pub min: usize,
        /// Maximum size (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    fn sample_size(s: SizeRange, rng: &mut TestRng) -> usize {
        s.min + rng.below((s.max - s.min + 1) as u64) as usize
    }

    /// Strategy for `Vec<T>` with sizes in a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = sample_size(self.size, rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with sizes in a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy; may produce fewer elements than requested
    /// when the element domain is too small.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = sample_size(self.size, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(50) + 50 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
        Union,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of upstream's `prop` namespace.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Declares property tests. Supports `name in strategy` and
/// `name: Type` parameters and an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    // ---- internal: bind parameters -----------------------------------
    (@bind $rng:ident) => {};
    (@bind $rng:ident $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::new_value(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::new_value(&($strat), &mut $rng);
    };
    (@bind $rng:ident $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::new_value(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::new_value(&$crate::any::<$ty>(), &mut $rng);
    };
    // ---- internal: one test fn at a time ------------------------------
    (@tests $cfg:expr;) => {};
    (@tests $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __case: u32 = 0;
            while __case < __cfg.cases {
                let __res: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::proptest!(@bind __rng $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __res {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__m)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __m
                        );
                    }
                }
                __case += 1;
            }
        }
        $crate::proptest!(@tests $cfg; $($rest)*);
    };
    // ---- entry points -------------------------------------------------
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
