//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements `SmallRng` (SplitMix64 — deterministic but a *different*
//! stream than upstream xoshiro for the same seed), the `Rng` extension
//! methods used by this workspace (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom::{shuffle, choose}`. See `vendor/README.md`.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only `seed_from_u64` is supported).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Scalar types that can be sampled uniformly from a range (mirrors
/// upstream's `SampleUniform`, collapsed to one method).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (exclusive) or `[lo, hi]`
    /// (inclusive).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let extra = if inclusive { 1 } else { 0 };
                let span = (hi as i128 - lo as i128 + extra) as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                _inclusive: bool,
            ) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let u = <f64 as Standard>::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast deterministic generator (SplitMix64 here; upstream
    /// uses xoshiro — streams differ for the same seed).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        for _ in 0..1000 {
            let v = a.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = a.gen_range(1usize..=3);
            assert!((1..=3).contains(&u));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
