//! Minimal offline stand-in for the `criterion` crate.
//!
//! Benchmarks compile and smoke-run: each `iter` closure runs a handful
//! of times under a plain `Instant` and a one-line mean is printed.
//! There is no statistics engine, warm-up, or HTML report. See
//! `vendor/README.md`.

use std::time::Instant;

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], letting `bench_function` accept
/// both strings and ids.
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f` for a small fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` with a fresh `setup` value per iteration.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        let mut total = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.mean_ns = total as f64 / self.iters as f64;
    }
}

fn run_one(group: &str, id: &BenchmarkId, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        mean_ns: 0.0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.name.clone()
    } else {
        format!("{group}/{}", id.name)
    };
    println!("{label:<60} {:>12.0} ns/iter", b.mean_ns);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the throughput label (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the per-benchmark iteration count (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 1000);
        self
    }

    /// Ignored; present for API compatibility.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into_benchmark_id(), self.iters, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id, self.iters, |b| f(b, input));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    iters: u64,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.default_iters();
        BenchmarkGroup {
            name: name.into(),
            iters,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let iters = self.default_iters();
        run_one("", &id.into_benchmark_id(), iters, f);
        self
    }

    fn default_iters(&self) -> u64 {
        if self.iters == 0 {
            10
        } else {
            self.iters
        }
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
