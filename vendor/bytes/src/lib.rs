//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `Bytes` API this workspace uses: cheap
//! clones and zero-copy `slice()` views backed by a shared `Arc<[u8]>`.
//! See `vendor/README.md` for why this exists.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copies; the upstream crate
    /// borrows, but nothing in this workspace depends on that).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds, like upstream.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end");
        assert!(end <= len, "range end out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        (**self).cmp(&**other)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.len(), 5);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
